#include "swap/write_behind_backend.h"

#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "util/assert.h"
#include "util/audit.h"

namespace compcache {

WriteBehindBackend::WriteBehindBackend(
    std::unique_ptr<CompressedSwapBackend> inner, Clock* clock, uint32_t depth)
    : inner_(std::move(inner)), clock_(clock), depth_(depth) {
  CC_EXPECTS(inner_ != nullptr);
  CC_EXPECTS(clock_ != nullptr);
  CC_EXPECTS(depth_ >= 1);
}

void WriteBehindBackend::Poll() { events_.RunUntil(clock_->Now()); }

void WriteBehindBackend::StallUntil(SimTime t) {
  if (t > clock_->Now()) {
    stats_.stall_time += t - clock_->Now();
    clock_->Advance(t - clock_->Now(), TimeCategory::kIo);
  }
  events_.RunUntil(clock_->Now());
}

void WriteBehindBackend::Retire(uint64_t seq) {
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if (it->seq != seq) {
      continue;
    }
    for (const PageKey& key : it->keys) {
      // A newer in-flight batch may have overwritten the page; only drop the
      // index entry if it still points at this batch.
      const auto kit = inflight_keys_.find(key);
      if (kit != inflight_keys_.end() && kit->second == seq) {
        inflight_keys_.erase(kit);
      }
    }
    inflight_.erase(it);
    ++stats_.batches_completed;
    ++lifetime_completed_;
    return;
  }
  CC_EXPECTS(false && "completion event for unknown batch");
}

IoStatus WriteBehindBackend::WriteBatch(std::span<const SwapPageImage> pages) {
  Poll();
  // The batch happens physically now — stored bytes, metadata, status, and
  // fault ordinals are exactly the synchronous ones; only the time is deferred.
  const WriteTicket ticket = inner_->SubmitWriteBatch(pages);
  const uint64_t seq = next_seq_++;
  Batch batch;
  batch.seq = seq;
  batch.complete_at = ticket.complete_at;
  if (ticket.status == IoStatus::kOk) {
    batch.keys.reserve(pages.size());
    for (const SwapPageImage& image : pages) {
      batch.keys.push_back(image.key);
      inflight_keys_[image.key] = seq;
    }
  }
  inflight_.push_back(std::move(batch));
  events_.Schedule(ticket.complete_at, [this, seq] { Retire(seq); });
  ++stats_.batches_submitted;
  ++lifetime_submitted_;
  stats_.pages_submitted += pages.size();
  stats_.deferred_io_time += ticket.device_time;

  // Backpressure: the queue holds at most `depth` batches counting this one,
  // so depth 1 waits out its own disk time (the synchronous machine).
  bool stalled = false;
  while (inflight_.size() >= depth_ && !events_.empty()) {
    const SimTime target = events_.NextTime();
    if (target > clock_->Now()) {
      stalled = true;
    }
    StallUntil(target);
  }
  if (stalled) {
    ++stats_.backpressure_stalls;
  }
  return ticket.status;
}

CompressedSwapBackend::ReadResult WriteBehindBackend::ReadPage(
    PageKey key, bool collect_coresidents) {
  Poll();
  const auto it = inflight_keys_.find(key);
  if (it != inflight_keys_.end()) {
    // Barrier: the data is physically readable, but a real disk queue would
    // not let this read overtake the still-queued write of the same page.
    const uint64_t seq = it->second;
    SimTime target = clock_->Now();
    for (const Batch& batch : inflight_) {
      if (batch.seq == seq) {
        target = batch.complete_at;
        break;
      }
    }
    if (target > clock_->Now()) {
      ++stats_.barrier_stalls;
      StallUntil(target);
    }
  }
  return inner_->ReadPage(key, collect_coresidents);
}

void WriteBehindBackend::Drain(bool advance_clock) {
  if (!advance_clock) {
    events_.RunUntil(SimTime::FromNanos(std::numeric_limits<int64_t>::max()));
    return;
  }
  while (!events_.empty()) {
    StallUntil(events_.NextTime());
  }
}

void WriteBehindBackend::RegisterAuditChecks(InvariantAuditor* auditor) {
  inner_->RegisterAuditChecks(auditor);
  auditor->Register("pipeline", "inflight-conservation",
                    [this]() -> std::optional<std::string> {
                      if (lifetime_submitted_ !=
                          lifetime_completed_ + inflight_.size()) {
                        return "submitted " + std::to_string(lifetime_submitted_) +
                               " != completed " +
                               std::to_string(lifetime_completed_) +
                               " + inflight " + std::to_string(inflight_.size());
                      }
                      return std::nullopt;
                    });
  auditor->Register("pipeline", "event-queue-coherent",
                    [this]() -> std::optional<std::string> {
                      if (events_.size() != inflight_.size()) {
                        return "pending events " + std::to_string(events_.size()) +
                               " != inflight batches " +
                               std::to_string(inflight_.size());
                      }
                      for (const auto& [key, seq] : inflight_keys_) {
                        bool live = false;
                        for (const Batch& batch : inflight_) {
                          live |= batch.seq == seq;
                        }
                        if (!live) {
                          return "in-flight key maps to retired batch " +
                                 std::to_string(seq);
                        }
                      }
                      return std::nullopt;
                    });
}

void WriteBehindBackend::BindMetrics(MetricRegistry* registry) {
  CC_EXPECTS(registry != nullptr);
  inner_->BindMetrics(registry);
  const WriteBehindStats* s = &stats_;
  registry->RegisterCounterGauge("pipeline.batches_submitted", [s] {
    return static_cast<double>(s->batches_submitted);
  });
  registry->RegisterCounterGauge("pipeline.batches_completed", [s] {
    return static_cast<double>(s->batches_completed);
  });
  registry->RegisterCounterGauge("pipeline.pages_submitted", [s] {
    return static_cast<double>(s->pages_submitted);
  });
  registry->RegisterCounterGauge("pipeline.barrier_stalls", [s] {
    return static_cast<double>(s->barrier_stalls);
  });
  registry->RegisterCounterGauge("pipeline.backpressure_stalls", [s] {
    return static_cast<double>(s->backpressure_stalls);
  });
  registry->RegisterCounterGauge("pipeline.stall_ns", [s] {
    return static_cast<double>(s->stall_time.nanos());
  });
  registry->RegisterCounterGauge("pipeline.deferred_io_ns", [s] {
    return static_cast<double>(s->deferred_io_time.nanos());
  });
  registry->RegisterGauge("pipeline.inflight",
                          [this] { return static_cast<double>(inflight_.size()); });
}

}  // namespace compcache
