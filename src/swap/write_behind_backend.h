// Write-behind decorator over a compressed swap backend.
//
// The paper's clustered 32 KB write-out amortizes seek cost but is still fully
// synchronous in the baseline machine: the faulting app stalls until the whole
// batch reaches the platter. This decorator turns each WriteBatch into a
// *submitted* background request: the wrapped layout performs the batch
// physically at the submit instant (bytes, metadata, IoStatus, and fault
// ordinals are identical to the synchronous path — outcomes never depend on
// queue depth), while the device time accrues on the disk's deferred timeline
// and a completion event is scheduled on a (time, seq)-ordered event queue.
// Subsequent app CPU (compression of the next batch, page touches) overlaps
// the disk.
//
// Three rules keep the model honest:
//   * Backpressure — at most `depth` batches may be outstanding; a submit that
//     would exceed the bound stalls (kIo) until the oldest batch completes.
//     Depth 1 therefore degenerates to the synchronous machine: every submit
//     waits out its own disk time before returning.
//   * Barrier — faulting in a page whose batch is still in flight waits for
//     that batch's completion first (the data is physically readable, but a
//     real disk queue would not let the read overtake the write).
//   * FIFO device — foreground I/O issued while deferred work is pending
//     queues behind it (charged by DiskDevice as disk.queue_wait_ns).
#ifndef COMPCACHE_SWAP_WRITE_BEHIND_BACKEND_H_
#define COMPCACHE_SWAP_WRITE_BEHIND_BACKEND_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "swap/compressed_swap_backend.h"
#include "vm/page_key.h"

namespace compcache {

struct WriteBehindStats {
  uint64_t batches_submitted = 0;
  uint64_t batches_completed = 0;
  uint64_t pages_submitted = 0;
  uint64_t barrier_stalls = 0;       // fault-in hit an in-flight batch
  uint64_t backpressure_stalls = 0;  // submit found the queue full
  SimDuration stall_time;            // clock advanced waiting on completions
  SimDuration deferred_io_time;      // device time accrued off the app clock
};

class WriteBehindBackend : public CompressedSwapBackend {
 public:
  // `depth` >= 1 bounds outstanding batches (1 = effectively synchronous).
  WriteBehindBackend(std::unique_ptr<CompressedSwapBackend> inner, Clock* clock,
                     uint32_t depth);

  // Submits the batch via the inner layout's SubmitWriteBatch, schedules its
  // completion event, then applies backpressure. Returns the batch's IoStatus
  // (known at submit: outcomes are depth-independent).
  IoStatus WriteBatch(std::span<const SwapPageImage> pages) override;

  // A wrapped wrapper would double-defer; forward to the inner layout.
  WriteTicket SubmitWriteBatch(std::span<const SwapPageImage> pages) override {
    return inner_->SubmitWriteBatch(pages);
  }
  DiskDevice* device() override { return inner_->device(); }

  // Barrier: if `key` belongs to an in-flight batch, stalls to that batch's
  // completion before reading through.
  ReadResult ReadPage(PageKey key, bool collect_coresidents) override;

  // Metadata is committed at submit, so these forward without stalling.
  bool Contains(PageKey key) const override { return inner_->Contains(key); }
  void Invalidate(PageKey key) override { inner_->Invalidate(key); }
  MountStats Mount() override { return inner_->Mount(); }
  void ForEachPage(const std::function<void(PageKey)>& fn) const override {
    inner_->ForEachPage(fn);
  }
  void RegisterAuditChecks(InvariantAuditor* auditor) override;
  void ResetStats() override {
    stats_ = WriteBehindStats{};
    inner_->ResetStats();
  }
  void BindMetrics(MetricRegistry* registry) override;
  void SetTracer(EventTracer* tracer) override { inner_->SetTracer(tracer); }
  void SetVerifyChecksums(bool verify) override {
    inner_->SetVerifyChecksums(verify);
  }

  // Fires completion events the clock has already passed (never advances it).
  void Poll();
  // Waits out every in-flight batch: advances the clock (kIo, counted in
  // stall_time) to each completion in order. With `advance_clock` false the
  // events are retired without moving time (post-crash teardown).
  void Drain(bool advance_clock);
  // True while the batch that last wrote `key` is still in flight.
  bool InFlight(PageKey key) const { return inflight_keys_.contains(key); }

  CompressedSwapBackend* inner() { return inner_.get(); }
  const WriteBehindStats& stats() const { return stats_; }
  size_t inflight_batches() const { return inflight_.size(); }

 private:
  struct Batch {
    uint64_t seq = 0;
    SimTime complete_at;
    std::vector<PageKey> keys;  // successfully written pages (empty on kFailed)
  };

  // Advances the clock to `t` (kIo) if it is in the future, then polls.
  void StallUntil(SimTime t);
  // Completion handler: removes batch `seq` and its key-index entries.
  void Retire(uint64_t seq);

  std::unique_ptr<CompressedSwapBackend> inner_;
  Clock* clock_;
  uint32_t depth_;
  EventQueue events_;
  std::deque<Batch> inflight_;  // completion order == submit order
  // key -> seq of the latest in-flight batch holding it.
  std::unordered_map<PageKey, uint64_t, PageKeyHash> inflight_keys_;
  uint64_t next_seq_ = 0;
  WriteBehindStats stats_;
  // Lifetime counters for the auditor (survive ResetStats, unlike stats_).
  uint64_t lifetime_submitted_ = 0;
  uint64_t lifetime_completed_ = 0;
};

}  // namespace compcache

#endif  // COMPCACHE_SWAP_WRITE_BEHIND_BACKEND_H_
