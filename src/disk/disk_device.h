// A backing-store device: real byte storage plus modelled timing.
//
// The device stores data for real (sparsely, in 4 KB chunks) so that everything the
// simulator pages out and back in is verified end-to-end — a bug that corrupted a
// compressed page in the swap path would surface as wrong application results, not
// just wrong timings.
#ifndef COMPCACHE_DISK_DISK_DEVICE_H_
#define COMPCACHE_DISK_DISK_DEVICE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "disk/disk_model.h"
#include "sim/clock.h"
#include "util/metrics.h"
#include "util/time_types.h"
#include "util/trace.h"

namespace compcache {

struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  SimDuration busy_time;
};

class DiskDevice {
 public:
  // setup_overhead is charged once per request (driver + command issue).
  DiskDevice(Clock* clock, std::unique_ptr<BackingTimingModel> timing,
             SimDuration setup_overhead);

  // Reads `out.size()` bytes at `offset`; unwritten areas read as zero.
  void Read(uint64_t offset, std::span<uint8_t> out);

  // Writes `data` at `offset`.
  void Write(uint64_t offset, std::span<const uint8_t> data);

  uint64_t capacity() const { return timing_->capacity(); }
  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }
  Clock* clock() const { return clock_; }

  // --- observability ---
  // Publishes counters as "disk.*" gauges and creates the "disk.access_ns"
  // per-request latency histogram.
  void BindMetrics(MetricRegistry* registry);
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

 private:
  static constexpr uint64_t kChunkSize = 4096;
  using Chunk = std::array<uint8_t, kChunkSize>;

  void Charge(uint64_t offset, uint64_t length);
  Chunk& ChunkFor(uint64_t index);

  Clock* clock_;
  std::unique_ptr<BackingTimingModel> timing_;
  SimDuration setup_overhead_;
  std::unordered_map<uint64_t, std::unique_ptr<Chunk>> chunks_;
  DiskStats stats_;
  LatencyHistogram* access_latency_ = nullptr;  // owned by the bound registry
  EventTracer* tracer_ = nullptr;
};

}  // namespace compcache

#endif  // COMPCACHE_DISK_DISK_DEVICE_H_
