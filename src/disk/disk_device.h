// A backing-store device: real byte storage plus modelled timing.
//
// The device stores data for real (sparsely, in 4 KB chunks) so that everything the
// simulator pages out and back in is verified end-to-end — a bug that corrupted a
// compressed page in the swap path would surface as wrong application results, not
// just wrong timings.
//
// The device can also fail. When a FaultInjector is attached, transient read and
// write errors follow its schedule and are absorbed by a bounded
// retry-with-backoff policy whose latency is charged through the timing model;
// only when the policy is exhausted does the error surface as IoStatus::kFailed.
// Latent sector corruption (a stored bit flipping after an otherwise successful
// write) is injected silently — the device has no checksums, by design; the swap
// backends and the compression cache detect it at read time.
#ifndef COMPCACHE_DISK_DISK_DEVICE_H_
#define COMPCACHE_DISK_DISK_DEVICE_H_

#include <array>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <unordered_map>

#include "disk/disk_model.h"
#include "sim/clock.h"
#include "util/assert.h"
#include "util/fault.h"
#include "util/io_status.h"
#include "util/metrics.h"
#include "util/time_types.h"
#include "util/trace.h"

namespace compcache {

struct DiskStats {
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  SimDuration busy_time;
  // Foreground time spent waiting for deferred (write-behind) requests already
  // queued at the device — the FIFO ordering cost of background I/O.
  SimDuration queue_wait_time;
  // Retry-policy outcomes under fault injection (all zero without an injector).
  uint64_t read_retries = 0;
  uint64_t write_retries = 0;
  uint64_t reads_exhausted = 0;
  uint64_t writes_exhausted = 0;
  SimDuration retry_backoff_time;
  // Simulated power losses that fired mid-write (see PowerFailure).
  uint64_t power_failures = 0;
};

// Thrown by DiskDevice::Write when the injector's kPowerFail schedule fires
// mid-transfer. The machine owning the device is dead from that instant: the
// stored image keeps only the sectors persisted before the cut, every later
// request returns kFailed without advancing time, and recovery happens by
// building a fresh machine over the surviving image (Machine::Recover).
class PowerFailure : public std::exception {
 public:
  const char* what() const noexcept override { return "simulated power failure"; }
};

// Bounded exponential backoff for transient device errors. An operation is
// attempted up to max_attempts times; between attempts the caller waits
// initial_backoff * backoff_multiplier^(attempt-1) of virtual time, charged as
// I/O. Defaults follow the classic SCSI-driver shape: a handful of quick
// retries, then give up and let the layer above recover.
struct RetryPolicy {
  uint32_t max_attempts = 4;
  SimDuration initial_backoff = SimDuration::Micros(500);
  double backoff_multiplier = 2.0;
};

class DiskDevice {
 public:
  // setup_overhead is charged once per request (driver + command issue).
  DiskDevice(Clock* clock, std::unique_ptr<BackingTimingModel> timing,
             SimDuration setup_overhead);

  // Reads `out.size()` bytes at `offset`; unwritten areas read as zero.
  // Returns kFailed when injected transient errors outlast the retry policy
  // (out is untouched past the failed attempt's zero guarantee: nothing is
  // copied on failure).
  IoStatus Read(uint64_t offset, std::span<uint8_t> out);

  // Writes `data` at `offset`. Returns kFailed when retries are exhausted; the
  // stored bytes are unchanged in that case. Throws PowerFailure when the
  // injector's kPowerFail schedule fires mid-transfer: the prefix of `data`
  // persisted before the cut (whole 512-byte sectors plus part of the torn
  // one) is kept, the rest of the request is lost, and the device is dead
  // (power_failed()) from then on.
  IoStatus Write(uint64_t offset, std::span<const uint8_t> data);

  // True once a PowerFailure has fired. A dead device fails every subsequent
  // Read/Write immediately (no time charged, no fault ordinals consumed), so
  // destructor-time writeback of a crashed machine can never re-throw.
  bool power_failed() const { return power_failed_; }

  // Replaces this device's stored bytes with a snapshot of `other`'s — the
  // "surviving image" a recovered machine boots from. Timing/fault state is
  // not copied; only the persisted data survives a power cut.
  void CopyContentsFrom(const DiskDevice& other);

  uint64_t capacity() const { return timing_->capacity(); }
  const DiskStats& stats() const { return stats_; }
  // Clears the counters and the bound disk.access_ns histogram (if any), so a
  // bench warm-up reset leaves no stale observability state.
  void ResetStats();
  Clock* clock() const { return clock_; }

  void SetRetryPolicy(const RetryPolicy& policy);
  // Attaches fault injection; nullptr (the default) restores the perfect
  // device.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  // --- async request lifecycle (write-behind) ---
  // While a deferred window is open, Read/Write move bytes and consume fault
  // ordinals exactly as in the synchronous path, but device time accumulates
  // on a background timeline instead of advancing the caller's clock. Each
  // request is stamped at its actual (virtual) issue time — the later of "now"
  // and the end of the previously queued request — so the timing model's
  // positional state and the disk.access_ns histogram reflect the order the
  // device really services requests, not the submit instant. EndDeferred
  // returns the virtual time at which everything submitted in the window
  // completes. Windows do not nest.
  //
  // Outside a window, a request first waits for any still-pending deferred
  // work (the device is a single FIFO queue); that wait is charged to the
  // caller as kIo and counted in queue_wait_time.
  void BeginDeferred();
  SimTime EndDeferred();
  bool deferred_active() const { return deferred_active_; }
  // End of the last deferred request's service time (the background queue is
  // idle once the clock passes this point).
  SimTime deferred_busy_until() const { return deferred_busy_until_; }

  // RAII wrapper: opens a deferred window for its lifetime; Close() (or the
  // destructor) ends it. Safe against exceptions thrown mid-window
  // (PowerFailure), which would otherwise leave the device stuck in
  // deferred mode.
  class DeferredScope {
   public:
    explicit DeferredScope(DiskDevice* disk) : disk_(disk) { disk_->BeginDeferred(); }
    ~DeferredScope() {
      if (open_) disk_->EndDeferred();
    }
    DeferredScope(const DeferredScope&) = delete;
    DeferredScope& operator=(const DeferredScope&) = delete;
    // Ends the window and returns the completion time of its requests.
    SimTime Close() {
      CC_EXPECTS(open_);
      open_ = false;
      return disk_->EndDeferred();
    }
    // Device time accumulated by requests in this window so far.
    SimDuration busy() const { return disk_->window_busy_; }

   private:
    DiskDevice* disk_;
    bool open_ = true;
  };

  // --- observability ---
  // Publishes counters as "disk.*" / "retry.*" gauges and creates the
  // "disk.access_ns" per-request latency histogram.
  void BindMetrics(MetricRegistry* registry);
  void SetTracer(EventTracer* tracer) { tracer_ = tracer; }

 private:
  static constexpr uint64_t kChunkSize = 4096;
  // Granularity at which a power cut can tear an in-flight write.
  static constexpr uint64_t kSectorSize = 512;
  using Chunk = std::array<uint8_t, kChunkSize>;

  void Charge(uint64_t offset, uint64_t length);
  // Charges one backoff interval for `attempt` (1-based) and records it.
  void ChargeBackoff(uint32_t attempt);
  // Evaluates `site`'s schedule once per kChunkSize block of a `bytes`-sized
  // request; true when any block faulted.
  bool AttemptFaults(FaultSite site, size_t bytes);
  void StoreBytes(uint64_t offset, std::span<const uint8_t> data);
  Chunk& ChunkFor(uint64_t index);

  Clock* clock_;
  std::unique_ptr<BackingTimingModel> timing_;
  SimDuration setup_overhead_;
  RetryPolicy retry_policy_;
  std::unordered_map<uint64_t, std::unique_ptr<Chunk>> chunks_;
  DiskStats stats_;
  bool deferred_active_ = false;
  // End of the busiest queued deferred request; requests (deferred or not)
  // issue no earlier than this.
  SimTime deferred_busy_until_;
  // Charges accumulated by the currently open window (count and device time).
  uint64_t window_charges_ = 0;
  SimDuration window_busy_;
  bool power_failed_ = false;
  FaultInjector* injector_ = nullptr;
  LatencyHistogram* access_latency_ = nullptr;  // owned by the bound registry
  EventTracer* tracer_ = nullptr;
};

}  // namespace compcache

#endif  // COMPCACHE_DISK_DISK_DEVICE_H_
