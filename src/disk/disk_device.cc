#include "disk/disk_device.h"

#include <algorithm>
#include <cstring>

#include "util/assert.h"

namespace compcache {

DiskDevice::DiskDevice(Clock* clock, std::unique_ptr<BackingTimingModel> timing,
                       SimDuration setup_overhead)
    : clock_(clock), timing_(std::move(timing)), setup_overhead_(setup_overhead) {
  CC_EXPECTS(clock_ != nullptr);
  CC_EXPECTS(timing_ != nullptr);
}

void DiskDevice::SetRetryPolicy(const RetryPolicy& policy) {
  CC_EXPECTS(policy.max_attempts >= 1);
  CC_EXPECTS(policy.backoff_multiplier >= 1.0);
  retry_policy_ = policy;
}

void DiskDevice::ResetStats() {
  stats_ = DiskStats{};
  if (access_latency_ != nullptr) {
    access_latency_->Reset();
  }
}

void DiskDevice::BeginDeferred() {
  CC_EXPECTS(!deferred_active_);
  deferred_active_ = true;
  window_charges_ = 0;
  window_busy_ = SimDuration{};
}

SimTime DiskDevice::EndDeferred() {
  CC_EXPECTS(deferred_active_);
  deferred_active_ = false;
  // A window that issued no requests completes immediately; otherwise the
  // window's work is done when the background queue drains.
  return window_charges_ == 0 ? clock_->Now() : deferred_busy_until_;
}

void DiskDevice::Charge(uint64_t offset, uint64_t length) {
  if (deferred_active_) {
    // Background request: stamp it at its actual issue time — behind whatever
    // is already queued, but no earlier than now — and accumulate its service
    // time on the deferred timeline instead of the caller's clock. Using the
    // issue time (not the submit time) for the timing model keeps the head
    // position honest and makes disk.access_ns reflect real issue order.
    SimTime issue = std::max(deferred_busy_until_, clock_->Now());
    issue = issue + setup_overhead_;
    const SimDuration device_cost = timing_->Access(issue, offset, length);
    deferred_busy_until_ = issue + device_cost;
    stats_.busy_time += setup_overhead_ + device_cost;
    ++window_charges_;
    window_busy_ += setup_overhead_ + device_cost;
    if (access_latency_ != nullptr) {
      access_latency_->Observe(static_cast<double>((setup_overhead_ + device_cost).nanos()));
    }
    return;
  }
  // Foreground request: the device is one FIFO queue, so first wait out any
  // deferred work still in flight (charged to the caller — this is the price
  // of write-behind showing up on the fault path).
  if (deferred_busy_until_ > clock_->Now()) {
    const SimDuration wait = deferred_busy_until_ - clock_->Now();
    clock_->Advance(wait, TimeCategory::kIo);
    stats_.queue_wait_time += wait;
  }
  // The setup overhead elapses before the device starts working on the request.
  clock_->Advance(setup_overhead_, TimeCategory::kIo);
  const SimDuration device_cost = timing_->Access(clock_->Now(), offset, length);
  clock_->Advance(device_cost, TimeCategory::kIo);
  stats_.busy_time += setup_overhead_ + device_cost;
  if (access_latency_ != nullptr) {
    access_latency_->Observe(static_cast<double>((setup_overhead_ + device_cost).nanos()));
  }
}

void DiskDevice::ChargeBackoff(uint32_t attempt) {
  double scale = 1.0;
  for (uint32_t i = 1; i < attempt; ++i) {
    scale *= retry_policy_.backoff_multiplier;
  }
  const auto backoff = SimDuration::Nanos(static_cast<int64_t>(
      static_cast<double>(retry_policy_.initial_backoff.nanos()) * scale));
  stats_.retry_backoff_time += backoff;
  if (deferred_active_) {
    // The retry waits on the background timeline, after the failed attempt.
    deferred_busy_until_ =
        std::max(deferred_busy_until_, clock_->Now()) + backoff;
    ++window_charges_;
    window_busy_ += backoff;
    if (tracer_ != nullptr) {
      tracer_->Record(TraceEventKind::kDiskRetry, deferred_busy_until_, attempt,
                      static_cast<uint64_t>(backoff.nanos()));
    }
    return;
  }
  clock_->Advance(backoff, TimeCategory::kIo);
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskRetry, clock_->Now(), attempt,
                    static_cast<uint64_t>(backoff.nanos()));
  }
}

void DiskDevice::BindMetrics(MetricRegistry* registry) {
  CC_EXPECTS(registry != nullptr);
  const DiskStats* s = &stats_;
  registry->RegisterCounterGauge("disk.read_ops",
                          [s] { return static_cast<double>(s->read_ops); });
  registry->RegisterCounterGauge("disk.write_ops",
                          [s] { return static_cast<double>(s->write_ops); });
  registry->RegisterCounterGauge("disk.bytes_read",
                          [s] { return static_cast<double>(s->bytes_read); });
  registry->RegisterCounterGauge("disk.bytes_written",
                          [s] { return static_cast<double>(s->bytes_written); });
  registry->RegisterCounterGauge("disk.busy_ns",
                          [s] { return static_cast<double>(s->busy_time.nanos()); });
  registry->RegisterCounterGauge("disk.queue_wait_ns", [s] {
    return static_cast<double>(s->queue_wait_time.nanos());
  });
  registry->RegisterCounterGauge("retry.read_retries",
                          [s] { return static_cast<double>(s->read_retries); });
  registry->RegisterCounterGauge("retry.write_retries",
                          [s] { return static_cast<double>(s->write_retries); });
  registry->RegisterCounterGauge("retry.reads_exhausted",
                          [s] { return static_cast<double>(s->reads_exhausted); });
  registry->RegisterCounterGauge("retry.writes_exhausted",
                          [s] { return static_cast<double>(s->writes_exhausted); });
  registry->RegisterCounterGauge("retry.backoff_ns", [s] {
    return static_cast<double>(s->retry_backoff_time.nanos());
  });
  registry->RegisterCounterGauge("fault.crashes",
                          [s] { return static_cast<double>(s->power_failures); });
  access_latency_ = registry->BindHistogram("disk.access_ns");
}

DiskDevice::Chunk& DiskDevice::ChunkFor(uint64_t index) {
  auto& slot = chunks_[index];
  if (slot == nullptr) {
    slot = std::make_unique<Chunk>();
    slot->fill(0);
  }
  return *slot;
}

IoStatus DiskDevice::Read(uint64_t offset, std::span<uint8_t> out) {
  CC_EXPECTS(offset + out.size() <= capacity());
  if (power_failed_) {
    return IoStatus::kFailed;  // dead device: no time, no fault ordinals
  }
  // One logical operation regardless of how many attempts it takes.
  ++stats_.read_ops;
  stats_.bytes_read += out.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskRead, clock_->Now(), offset, out.size());
  }

  for (uint32_t attempt = 1;; ++attempt) {
    Charge(offset, out.size());
    if (!AttemptFaults(FaultSite::kDiskRead, out.size())) {
      break;  // the transfer succeeded
    }
    if (attempt >= retry_policy_.max_attempts) {
      ++stats_.reads_exhausted;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kDiskRetryExhausted, clock_->Now(), attempt, 0);
      }
      return IoStatus::kFailed;
    }
    ++stats_.read_retries;
    ChargeBackoff(attempt);
  }

  uint64_t pos = offset;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t chunk_index = pos / kChunkSize;
    const uint64_t within = pos % kChunkSize;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkSize - within, out.size() - done));
    const auto it = chunks_.find(chunk_index);
    if (it == chunks_.end()) {
      std::memset(out.data() + done, 0, n);
    } else {
      std::memcpy(out.data() + done, it->second->data() + within, n);
    }
    pos += n;
    done += n;
  }
  return IoStatus::kOk;
}

IoStatus DiskDevice::Write(uint64_t offset, std::span<const uint8_t> data) {
  CC_EXPECTS(offset + data.size() <= capacity());
  if (power_failed_) {
    return IoStatus::kFailed;  // dead device: no time, no fault ordinals
  }
  ++stats_.write_ops;
  stats_.bytes_written += data.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskWrite, clock_->Now(), offset, data.size());
  }

  for (uint32_t attempt = 1;; ++attempt) {
    Charge(offset, data.size());
    if (!AttemptFaults(FaultSite::kDiskWrite, data.size())) {
      break;
    }
    if (attempt >= retry_policy_.max_attempts) {
      ++stats_.writes_exhausted;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kDiskRetryExhausted, clock_->Now(), attempt, 0);
      }
      return IoStatus::kFailed;
    }
    ++stats_.write_retries;
    ChargeBackoff(attempt);
  }

  // Power-fail crash points sit *inside* the transfer: one per 512-byte
  // sector, checked in the order the sectors reach the platter. A trigger at
  // sector s persists sectors [0, s) whole plus a drawn prefix of sector s
  // (the torn sector), marks the device dead, and throws.
  if (injector_ != nullptr && !data.empty()) {
    const uint64_t sectors = (data.size() + kSectorSize - 1) / kSectorSize;
    for (uint64_t s = 0; s < sectors; ++s) {
      if (!injector_->ShouldFault(FaultSite::kPowerFail)) {
        continue;
      }
      const uint64_t torn = injector_->Draw(FaultSite::kPowerFail, kSectorSize);
      const size_t kept = static_cast<size_t>(
          std::min<uint64_t>(s * kSectorSize + torn, data.size()));
      StoreBytes(offset, data.subspan(0, kept));
      ++stats_.power_failures;
      power_failed_ = true;
      if (tracer_ != nullptr) {
        tracer_->Record(TraceEventKind::kPowerFail, clock_->Now(), offset + kept,
                        data.size() - kept);
      }
      throw PowerFailure();
    }
  }

  StoreBytes(offset, data);

  // Latent corruption: after an otherwise-successful write, one stored bit per
  // triggered block may flip. Silent here — the device has no checksums; the
  // layers above do.
  if (injector_ != nullptr && !data.empty()) {
    const uint64_t units = (data.size() + kChunkSize - 1) / kChunkSize;
    for (uint64_t u = 0; u < units; ++u) {
      if (!injector_->ShouldFault(FaultSite::kSectorCorruption)) {
        continue;
      }
      const uint64_t unit_bytes =
          std::min<uint64_t>(kChunkSize, data.size() - u * kChunkSize);
      const uint64_t bit = injector_->Draw(FaultSite::kSectorCorruption, unit_bytes * 8);
      const uint64_t victim = offset + u * kChunkSize + bit / 8;
      ChunkFor(victim / kChunkSize)[victim % kChunkSize] ^=
          static_cast<uint8_t>(1u << (bit % 8));
    }
  }
  return IoStatus::kOk;
}

// Evaluates the transient-fault schedule once per kChunkSize block of the
// request (minimum one), so nth-op schedules can target individual blocks of
// a clustered batch. Every block's ordinal is consumed even after a trigger,
// keeping the fault history independent of which block faults first.
bool DiskDevice::AttemptFaults(FaultSite site, size_t bytes) {
  if (injector_ == nullptr) {
    return false;
  }
  const uint64_t units = bytes == 0 ? 1 : (bytes + kChunkSize - 1) / kChunkSize;
  bool fault = false;
  for (uint64_t u = 0; u < units; ++u) {
    fault |= injector_->ShouldFault(site);
  }
  return fault;
}

void DiskDevice::StoreBytes(uint64_t offset, std::span<const uint8_t> data) {
  uint64_t pos = offset;
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t chunk_index = pos / kChunkSize;
    const uint64_t within = pos % kChunkSize;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkSize - within, data.size() - done));
    std::memcpy(ChunkFor(chunk_index).data() + within, data.data() + done, n);
    pos += n;
    done += n;
  }
}

void DiskDevice::CopyContentsFrom(const DiskDevice& other) {
  chunks_.clear();
  for (const auto& [index, chunk] : other.chunks_) {
    chunks_[index] = std::make_unique<Chunk>(*chunk);
  }
}

}  // namespace compcache
