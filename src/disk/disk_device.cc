#include "disk/disk_device.h"

#include <cstring>

#include "util/assert.h"

namespace compcache {

DiskDevice::DiskDevice(Clock* clock, std::unique_ptr<BackingTimingModel> timing,
                       SimDuration setup_overhead)
    : clock_(clock), timing_(std::move(timing)), setup_overhead_(setup_overhead) {
  CC_EXPECTS(clock_ != nullptr);
  CC_EXPECTS(timing_ != nullptr);
}

void DiskDevice::Charge(uint64_t offset, uint64_t length) {
  // The setup overhead elapses before the device starts working on the request.
  clock_->Advance(setup_overhead_, TimeCategory::kIo);
  const SimDuration device_cost = timing_->Access(clock_->Now(), offset, length);
  clock_->Advance(device_cost, TimeCategory::kIo);
  stats_.busy_time += setup_overhead_ + device_cost;
  if (access_latency_ != nullptr) {
    access_latency_->Observe(static_cast<double>((setup_overhead_ + device_cost).nanos()));
  }
}

void DiskDevice::BindMetrics(MetricRegistry* registry) {
  CC_EXPECTS(registry != nullptr);
  const DiskStats* s = &stats_;
  registry->RegisterGauge("disk.read_ops",
                          [s] { return static_cast<double>(s->read_ops); });
  registry->RegisterGauge("disk.write_ops",
                          [s] { return static_cast<double>(s->write_ops); });
  registry->RegisterGauge("disk.bytes_read",
                          [s] { return static_cast<double>(s->bytes_read); });
  registry->RegisterGauge("disk.bytes_written",
                          [s] { return static_cast<double>(s->bytes_written); });
  registry->RegisterGauge("disk.busy_ns",
                          [s] { return static_cast<double>(s->busy_time.nanos()); });
  access_latency_ = &registry->GetHistogram("disk.access_ns");
}

DiskDevice::Chunk& DiskDevice::ChunkFor(uint64_t index) {
  auto& slot = chunks_[index];
  if (slot == nullptr) {
    slot = std::make_unique<Chunk>();
    slot->fill(0);
  }
  return *slot;
}

void DiskDevice::Read(uint64_t offset, std::span<uint8_t> out) {
  CC_EXPECTS(offset + out.size() <= capacity());
  Charge(offset, out.size());
  ++stats_.read_ops;
  stats_.bytes_read += out.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskRead, clock_->Now(), offset, out.size());
  }

  uint64_t pos = offset;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t chunk_index = pos / kChunkSize;
    const uint64_t within = pos % kChunkSize;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkSize - within, out.size() - done));
    const auto it = chunks_.find(chunk_index);
    if (it == chunks_.end()) {
      std::memset(out.data() + done, 0, n);
    } else {
      std::memcpy(out.data() + done, it->second->data() + within, n);
    }
    pos += n;
    done += n;
  }
}

void DiskDevice::Write(uint64_t offset, std::span<const uint8_t> data) {
  CC_EXPECTS(offset + data.size() <= capacity());
  Charge(offset, data.size());
  ++stats_.write_ops;
  stats_.bytes_written += data.size();
  if (tracer_ != nullptr) {
    tracer_->Record(TraceEventKind::kDiskWrite, clock_->Now(), offset, data.size());
  }

  uint64_t pos = offset;
  size_t done = 0;
  while (done < data.size()) {
    const uint64_t chunk_index = pos / kChunkSize;
    const uint64_t within = pos % kChunkSize;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(kChunkSize - within, data.size() - done));
    std::memcpy(ChunkFor(chunk_index).data() + within, data.data() + done, n);
    pos += n;
    done += n;
  }
}

}  // namespace compcache
