#include "disk/disk_model.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace compcache {

SeekDiskModel::SeekDiskModel(SeekDiskParams params) : params_(params) {
  CC_EXPECTS(params_.capacity_bytes > 0);
  CC_EXPECTS(params_.track_bytes > 0);
  CC_EXPECTS(params_.rpm > 0);
  CC_EXPECTS(params_.min_seek <= params_.avg_seek && params_.avg_seek <= params_.max_seek);
}

SimDuration SeekDiskModel::SeekTime(uint64_t byte_distance) const {
  // Square-root seek curve, the standard first-order model: short seeks are
  // dominated by head settle time, long seeks by constant-velocity travel. The
  // curve is anchored so that a seek across one third of the surface (the average
  // distance for uniformly random accesses) costs avg_seek.
  const double frac =
      static_cast<double>(byte_distance) / static_cast<double>(params_.capacity_bytes);
  const double anchor = std::sqrt(1.0 / 3.0);
  const double scale = (params_.avg_seek - params_.min_seek).seconds() / anchor;
  const double t = params_.min_seek.seconds() + scale * std::sqrt(frac);
  return std::min(SimDuration::Seconds(t), params_.max_seek);
}

SimDuration SeekDiskModel::Access(SimTime now, uint64_t offset, uint64_t length) {
  CC_EXPECTS(offset + length <= params_.capacity_bytes);
  SimDuration cost;

  const uint64_t cur_track = head_pos_ / params_.track_bytes;
  const uint64_t target_track = offset / params_.track_bytes;
  if (cur_track != target_track) {
    const uint64_t distance =
        offset >= head_pos_ ? offset - head_pos_ : head_pos_ - offset;
    cost += SeekTime(distance);
  }

  // Rotational wait: the platter keeps spinning while the host computes, so the
  // angular position at arrival is derived from the virtual clock.
  const double rev = params_.RevolutionTime().seconds();
  const double arrival = (now + cost).seconds();
  const double current_angle = arrival / rev - std::floor(arrival / rev);
  const double target_angle = static_cast<double>(offset % params_.track_bytes) /
                              static_cast<double>(params_.track_bytes);
  double wait_frac = target_angle - current_angle;
  if (wait_frac < 0) {
    wait_frac += 1.0;
  }
  cost += SimDuration::Seconds(wait_frac * rev);

  cost += SimDuration::ForBytes(length, params_.MediaBytesPerSec());
  head_pos_ = offset + length;
  return cost;
}

SimDuration NetworkLinkModel::Access(SimTime /*now*/, uint64_t offset, uint64_t length) {
  CC_EXPECTS(offset + length <= params_.capacity_bytes);
  return params_.round_trip_latency +
         SimDuration::ForBytes(length, params_.bandwidth_bytes_per_sec);
}

}  // namespace compcache
