// Timing models for backing-store devices.
//
// The paper's testbed paged to a local DEC RZ57 SCSI disk; its motivating target
// environment was "mobile computers [that] may communicate over slower wireless
// networks" (section 1). Both are modelled: a positional seek/rotate/transfer disk
// and a latency/bandwidth network link.
//
// The disk model tracks the head's angular position against the virtual clock, so
// it naturally reproduces the access patterns the paper's results hinge on:
//   * back-to-back sequential transfers stream at media rate;
//   * a small read issued shortly *after* the previous one (CPU work in between)
//     misses its rotational window and waits most of a revolution — this is why
//     per-fault 4 KB page-ins are so much slower than one clustered 32 KB read;
//   * random accesses pay a distance-dependent seek plus rotational latency.
// The model is deterministic: latency follows from geometry and the virtual clock,
// never from a random draw.
#ifndef COMPCACHE_DISK_DISK_MODEL_H_
#define COMPCACHE_DISK_DISK_MODEL_H_

#include <cstdint>
#include <memory>

#include "util/time_types.h"

namespace compcache {

// Timing interface: cost of moving `length` bytes at byte offset `offset`,
// starting at virtual time `now`, given the device's internal position state.
class BackingTimingModel {
 public:
  virtual ~BackingTimingModel() = default;

  // Returns the time the access takes and updates positional state.
  virtual SimDuration Access(SimTime now, uint64_t offset, uint64_t length) = 0;

  // Device capacity in bytes.
  virtual uint64_t capacity() const = 0;
};

// Geometry/timing parameters for a seek disk. Defaults approximate the DEC RZ57:
// ~1.0 GB, 3600 rpm, ~15 ms average seek, ~2 MB/s media rate (32 KB per track at
// 16.7 ms per revolution).
struct SeekDiskParams {
  uint64_t capacity_bytes = 1000ull * 1024 * 1024;
  SimDuration min_seek = SimDuration::Millis(3);
  SimDuration avg_seek = SimDuration::Millis(15);
  SimDuration max_seek = SimDuration::Millis(30);
  double rpm = 3600.0;
  uint64_t track_bytes = 32 * 1024;

  double MediaBytesPerSec() const {
    return static_cast<double>(track_bytes) * rpm / 60.0;
  }
  SimDuration RevolutionTime() const { return SimDuration::Seconds(60.0 / rpm); }
};

class SeekDiskModel : public BackingTimingModel {
 public:
  explicit SeekDiskModel(SeekDiskParams params = {});

  SimDuration Access(SimTime now, uint64_t offset, uint64_t length) override;
  uint64_t capacity() const override { return params_.capacity_bytes; }

  const SeekDiskParams& params() const { return params_; }

 private:
  SimDuration SeekTime(uint64_t byte_distance) const;

  SeekDiskParams params_;
  uint64_t head_pos_ = 0;
};

// A store-and-forward network link to a page server (for the diskless mobile
// scenario): per-request latency plus bandwidth-limited transfer; position-free.
struct NetworkLinkParams {
  uint64_t capacity_bytes = 1000ull * 1024 * 1024;
  SimDuration round_trip_latency = SimDuration::Millis(20);
  double bandwidth_bytes_per_sec = 250.0e3;  // ~2 Mbps wireless
};

class NetworkLinkModel : public BackingTimingModel {
 public:
  explicit NetworkLinkModel(NetworkLinkParams params = {}) : params_(params) {}

  SimDuration Access(SimTime now, uint64_t offset, uint64_t length) override;
  uint64_t capacity() const override { return params_.capacity_bytes; }

 private:
  NetworkLinkParams params_;
};

}  // namespace compcache

#endif  // COMPCACHE_DISK_DISK_MODEL_H_
