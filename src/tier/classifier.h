// Size/heat classifier: decides which tier an evicted compressed page lands
// in, and tracks read recency so hot pages float upward.
//
// Placement follows ZipCache's observation that compressed-size class and
// access recency are the two signals worth acting on: small hot pages are the
// cheapest to keep close (many fit per frame, and they will fault soon), while
// large cold pages waste fast-tier capacity for little expected benefit. The
// classifier folds both into a rank in [0, 1) — 0 = keep closest — and maps
// the rank proportionally onto the configured stack.
#ifndef COMPCACHE_TIER_CLASSIFIER_H_
#define COMPCACHE_TIER_CLASSIFIER_H_

#include <cstdint>
#include <unordered_map>

#include "sim/clock.h"
#include "tier/tier_config.h"
#include "util/units.h"
#include "vm/page_key.h"

namespace compcache {

class TierClassifier {
 public:
  // Compressed-size quantum: same 1 KB sub-block the superblock ccache and the
  // clustered swap fragments use, so a page's size class is consistent across
  // the whole stack.
  static constexpr uint32_t kSubBlockBytes = kPageSize / 4;
  static constexpr uint32_t kMaxSizeClass = 4;

  TierClassifier(TierClassifierOptions options, const Clock* clock)
      : options_(options), clock_(clock) {}

  // Size class 1..4: ceil(payload / 1 KB), clamped. A raw page is class 4.
  static uint32_t SizeClass(size_t payload_bytes) {
    const uint32_t sub_blocks =
        static_cast<uint32_t>((payload_bytes + kSubBlockBytes - 1) / kSubBlockBytes);
    return sub_blocks < 1 ? 1 : (sub_blocks > kMaxSizeClass ? kMaxSizeClass : sub_blocks);
  }

  // Landing tier index for an evicted image among `num_tiers` total tiers
  // (index num_tiers-1 = the unbounded disk tier). Raw (incompressible)
  // images never land in a compressed-RAM tier — keeping an uncompressed page
  // in DRAM frames is what residency is for — so the caller passes the first
  // device tier's index as a floor for them.
  size_t LandingTier(PageKey key, size_t payload_bytes, bool is_compressed,
                     size_t num_tiers, size_t first_device_tier) const {
    if (num_tiers <= 1) {
      return 0;
    }
    // rank in [0, 1): size contributes the low half, coldness the high half.
    const uint32_t size_class = SizeClass(payload_bytes);
    const double size_rank = static_cast<double>(size_class - 1) / kMaxSizeClass;  // [0, 0.75]
    const double rank = size_rank * 0.5 + (IsHot(key) ? 0.0 : 0.5);
    size_t tier = static_cast<size_t>(rank * static_cast<double>(num_tiers));
    if (tier >= num_tiers) {
      tier = num_tiers - 1;
    }
    if (!is_compressed && tier < first_device_tier) {
      tier = first_device_tier;
    }
    return tier;
  }

  // Records that `key` was just read (faulted in from the stack).
  void NoteRead(PageKey key) {
    last_read_ns_[key] = static_cast<uint64_t>(clock_->Now().nanos());
  }

  // True when `key` was read within the hot window before now.
  bool IsHot(PageKey key) const {
    const auto it = last_read_ns_.find(key);
    if (it == last_read_ns_.end()) {
      return false;
    }
    const uint64_t now = static_cast<uint64_t>(clock_->Now().nanos());
    return now - it->second <= static_cast<uint64_t>(options_.hot_window.nanos());
  }

  bool promote_on_hot_read() const { return options_.promote_on_hot_read; }

  // Drops recency state for an invalidated page (bounds the map by the live
  // address space).
  void Forget(PageKey key) { last_read_ns_.erase(key); }

  size_t tracked_keys() const { return last_read_ns_.size(); }

 private:
  TierClassifierOptions options_;
  const Clock* clock_;
  std::unordered_map<PageKey, uint64_t, PageKeyHash> last_read_ns_;
};

}  // namespace compcache

#endif  // COMPCACHE_TIER_CLASSIFIER_H_
