#include "tier/tier_stack.h"

#include <algorithm>
#include <utility>

#include "compress/registry.h"
#include "disk/disk_model.h"
#include "swap/clustered_swap.h"
#include "util/assert.h"
#include "util/audit.h"
#include "util/checksum.h"

namespace compcache {

namespace {

bool KeyListed(std::span<const PageKey> keys, PageKey key) {
  return std::find(keys.begin(), keys.end(), key) != keys.end();
}

}  // namespace

TierStack::TierStack(Clock* clock, const CostModel* costs, FrameSource* frames,
                     Codec* stack_codec, std::unique_ptr<CompressedSwapBackend> bottom,
                     TierOptions options)
    : clock_(clock),
      costs_(costs),
      frames_(frames),
      stack_codec_(stack_codec),
      options_(std::move(options)),
      classifier_(options_.classifier, clock),
      bottom_(std::move(bottom)) {
  CC_EXPECTS(clock_ != nullptr && costs_ != nullptr && frames_ != nullptr &&
             stack_codec_ != nullptr && bottom_ != nullptr);
  tiers_.reserve(options_.tiers.size() + 1);
  for (const TierSpec& spec : options_.tiers) {
    CC_EXPECTS(!spec.name.empty() && spec.name != "disk");
    for (const Tier& existing : tiers_) {
      CC_EXPECTS(existing.spec.name != spec.name);
    }
    Tier tier;
    tier.spec = spec;
    tier.max_sub_blocks = spec.capacity_bytes / RamTierStore::kSubBlockBytes;
    CC_EXPECTS(tier.max_sub_blocks >= RamTierStore::kSubBlocksPerFrame);
    if (!spec.codec.empty()) {
      tier.codec = MakeCodec(spec.codec);
    }
    if (spec.medium == TierMedium::kCompressedRam) {
      tier.is_ram = true;
      tier.ram = std::make_unique<RamTierStore>(frames_);
      // Wire the tier's capacity up front (best-effort): tier inserts happen
      // exactly when the pool runs dry, so a lazily-allocating tier would
      // never win a frame. The arbiter hook shrinks this reserve under
      // machine-wide pressure; Put regrows it when frames come back.
      (void)tier.ram->Reserve(spec.capacity_bytes / kPageSize);
    } else {
      NetworkLinkParams params;
      params.capacity_bytes = spec.ssd_capacity_bytes;
      params.round_trip_latency = spec.ssd_latency;
      params.bandwidth_bytes_per_sec = spec.ssd_bandwidth_bytes_per_sec;
      tier.ssd_device = std::make_unique<DiskDevice>(
          clock_, std::make_unique<NetworkLinkModel>(params), spec.ssd_io_setup);
      tier.ssd_fs = std::make_unique<FileSystem>(tier.ssd_device.get());
      tier.owned_layout = std::make_unique<ClusteredSwapLayout>(tier.ssd_fs.get());
      tier.backend = tier.owned_layout.get();
    }
    tiers_.push_back(std::move(tier));
  }
  Tier disk;
  disk.spec.name = "disk";
  disk.is_bottom = true;
  disk.max_sub_blocks = UINT64_MAX;
  disk.backend = bottom_.get();
  tiers_.push_back(std::move(disk));
  first_device_tier_ = tiers_.size() - 1;
  for (size_t t = 0; t < tiers_.size(); ++t) {
    if (!tiers_[t].is_ram) {
      first_device_tier_ = t;
      break;
    }
  }
}

TierStack::~TierStack() = default;

IoStatus TierStack::WriteBatch(std::span<const SwapPageImage> pages) {
  if (tiers_.size() == 1) {
    // Degenerate stack: forward the original span untouched — same batch, same
    // layout packing, same device requests as the unwrapped machine.
    const IoStatus status = tiers_[0].backend->WriteBatch(pages);
    if (status == IoStatus::kOk) {
      for (const SwapPageImage& image : pages) {
        CommitStore(image.key, 0, SubBlocksFor(image.bytes.size()), false, Flow::kLanding);
      }
    }
    return status;
  }
  std::vector<std::vector<SwapPageImage>> groups(tiers_.size());
  for (const SwapPageImage& image : pages) {
    const size_t t = classifier_.LandingTier(image.key, image.bytes.size(), image.is_compressed,
                                             tiers_.size(), first_device_tier_);
    groups[t].push_back(image);
  }
  // Bottom group first: the disk is the only tier whose write can fail, and
  // failing before touching the other groups keeps the "nothing recorded on
  // kFailed" contract for the common all-to-disk case.
  const size_t bottom = tiers_.size() - 1;
  if (!groups[bottom].empty()) {
    const IoStatus status =
        StorePortableBatch(bottom, std::move(groups[bottom]), Flow::kLanding, true);
    if (status != IoStatus::kOk) {
      return status;
    }
  }
  IoStatus overall = IoStatus::kOk;
  for (size_t t = 0; t < bottom; ++t) {
    if (groups[t].empty()) {
      continue;
    }
    const IoStatus status = StorePortableBatch(t, std::move(groups[t]), Flow::kLanding, true);
    if (status != IoStatus::kOk) {
      overall = status;  // a cascade reached the disk and the disk failed
    }
  }
  return overall;
}

CompressedSwapBackend::WriteTicket TierStack::SubmitWriteBatch(
    std::span<const SwapPageImage> pages) {
  std::vector<std::unique_ptr<DiskDevice::DeferredScope>> windows;
  for (Tier& tier : tiers_) {
    if (tier.ssd_device != nullptr) {
      windows.push_back(std::make_unique<DiskDevice::DeferredScope>(tier.ssd_device.get()));
    }
  }
  windows.push_back(std::make_unique<DiskDevice::DeferredScope>(device()));
  WriteTicket ticket;
  ticket.status = WriteBatch(pages);
  SimTime complete_at;
  SimDuration device_time;
  for (auto& window : windows) {
    device_time += window->busy();
    const SimTime end = window->Close();
    complete_at = std::max(complete_at, end);
  }
  ticket.device_time = device_time;
  ticket.complete_at = complete_at;
  return ticket;
}

CompressedSwapBackend::ReadResult TierStack::ReadPage(PageKey key, bool collect_coresidents) {
  const auto it = entries_.find(key);
  CC_EXPECTS(it != entries_.end());
  const size_t t = it->second.tier;
  Tier& tier = tiers_[t];
  const SimTime start = clock_->Now();
  const bool was_hot = classifier_.IsHot(key);
  ReadResult result;
  if (tier.is_ram) {
    const RamTierStore::Image& stored = tier.ram->Find(key);
    clock_->Advance(costs_->CopyCost(stored.bytes.size()), TimeCategory::kCopy);
    result.bytes = stored.bytes;
    result.is_compressed = stored.is_compressed;
    result.original_size = stored.original_size;
    result.checksum = stored.checksum;
    if (verify_checksums_ && result.checksum != 0) {
      const uint32_t computed = Crc32(result.bytes);
      if (computed != result.checksum) {
        ++checksum_mismatches_;
        result.status = IoStatus::kCorrupt;
        if (tracer_ != nullptr) {
          tracer_->Record(TraceEventKind::kChecksumMismatch, clock_->Now(), key, result.checksum,
                          computed);
        }
      }
    }
  } else {
    // A transcoding tier's coresidents would carry the tier codec, which the
    // pager cannot decode, so only inherit tiers collect them.
    result = tier.backend->ReadPage(key, collect_coresidents && tier.codec == nullptr);
  }
  if (result.status == IoStatus::kOk && it->second.tier_coded) {
    DecodeTierImage(tier, &result);
  }
  ++tier.counters.reads;
  TouchLru(t, &it->second, key);
  if (tier.read_ns != nullptr) {
    tier.read_ns->Observe(static_cast<double>((clock_->Now() - start).nanos()));
  }
  if (result.status == IoStatus::kOk && t > 0 && classifier_.promote_on_hot_read() && was_hot &&
      !in_flight_key_.has_value()) {
    SwapPageImage portable;
    portable.key = key;
    portable.bytes = result.bytes;
    portable.is_compressed = result.is_compressed;
    portable.original_size = result.original_size;
    portable.checksum = result.checksum;
    std::vector<SwapPageImage> batch;
    batch.push_back(std::move(portable));
    in_flight_key_ = key;
    // kFailed means the tier above had no room even after demoting around the
    // in-flight key; the page simply stays where it is.
    (void)StorePortableBatch(t - 1, std::move(batch), Flow::kPromotion, false);
    in_flight_key_.reset();
  }
  classifier_.NoteRead(key);
  return result;
}

void TierStack::Invalidate(PageKey key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Tolerant no-op for never-stored keys, same as the layouts themselves.
    tiers_.back().backend->Invalidate(key);
    return;
  }
  RemoveFrom(it->second.tier, key, Removal::kInvalidated);
  // Deliberately NOT forgetting the key's read-recency stamp: the common
  // invalidation is the pager dirtying a just-faulted page, and that page is
  // the hottest thing in the machine — its next writeback should land high.
  // The stamp map stays bounded by the touched address space.
}

CompressedSwapBackend::MountStats TierStack::Mount() {
  CC_EXPECTS(entries_.empty());  // mount once, before the first WriteBatch
  Tier& bottom = tiers_.back();
  const MountStats stats = bottom.backend->Mount();
  const size_t b = tiers_.size() - 1;
  bottom.backend->ForEachPage([&](PageKey key) {
    bottom.lru.push_back(key);
    entries_[key] = Entry{b, 0, false, 0, std::prev(bottom.lru.end())};
  });
  for (Tier& tier : tiers_) {
    tier.pages_at_baseline = tier.lru.size();
  }
  return stats;
}

void TierStack::ForEachPage(const std::function<void(PageKey)>& fn) const {
  for (const auto& [key, entry] : entries_) {
    fn(key);
  }
}

void TierStack::ResetStats() {
  ResetBaseCounters();
  for (Tier& tier : tiers_) {
    tier.counters = TierCounters{};
    tier.pages_at_baseline = tier.lru.size();
    if (tier.read_ns != nullptr) {
      tier.read_ns->Reset();
    }
    if (tier.owned_layout != nullptr) {
      tier.owned_layout->ResetStats();
    }
    if (tier.ssd_device != nullptr) {
      tier.ssd_device->ResetStats();
    }
  }
  tiers_.back().backend->ResetStats();
}

void TierStack::SetVerifyChecksums(bool verify) {
  verify_checksums_ = verify;
  for (Tier& tier : tiers_) {
    if (tier.owned_layout != nullptr) {
      tier.owned_layout->SetVerifyChecksums(verify);
    }
  }
  tiers_.back().backend->SetVerifyChecksums(verify);
}

void TierStack::SetTracer(EventTracer* tracer) {
  tracer_ = tracer;
  for (Tier& tier : tiers_) {
    if (tier.owned_layout != nullptr) {
      tier.owned_layout->SetTracer(tracer);
    }
  }
  tiers_.back().backend->SetTracer(tracer);
}

void TierStack::BindMetrics(MetricRegistry* registry) {
  tiers_.back().backend->BindMetrics(registry);
  for (size_t t = 0; t < tiers_.size(); ++t) {
    Tier* tier = &tiers_[t];
    const std::string prefix = "tier." + tier->spec.name + ".";
    registry->RegisterGauge(prefix + "level", [t] { return static_cast<double>(t); });
    registry->RegisterGauge(prefix + "pages",
                            [tier] { return static_cast<double>(tier->lru.size()); });
    registry->RegisterGauge(prefix + "sub_blocks",
                            [tier] { return static_cast<double>(tier->sub_blocks_used); });
    if (tier->is_ram) {
      registry->RegisterGauge(prefix + "frames", [tier] {
        return static_cast<double>(tier->ram->frames_held());
      });
    }
    const auto counter = [&](const char* name, const uint64_t* value) {
      registry->RegisterCounterGauge(prefix + name,
                                     [value] { return static_cast<double>(*value); });
    };
    counter("landings", &tier->counters.landings);
    counter("demotions_in", &tier->counters.demotions_in);
    counter("demotions_out", &tier->counters.demotions_out);
    counter("promotions_in", &tier->counters.promotions_in);
    counter("promotions_out", &tier->counters.promotions_out);
    counter("invalidations", &tier->counters.invalidations);
    counter("reads", &tier->counters.reads);
    counter("transcodes", &tier->counters.transcodes);
    counter("demotion_failures", &tier->counters.demotion_failures);
    if (tier->ssd_device != nullptr) {
      // The SSD device's own BindMetrics would collide with the bottom disk's
      // fixed "disk.*" names, so its stats surface under the tier prefix.
      DiskDevice* dev = tier->ssd_device.get();
      registry->RegisterCounterGauge(prefix + "device_read_ops", [dev] {
        return static_cast<double>(dev->stats().read_ops);
      });
      registry->RegisterCounterGauge(prefix + "device_write_ops", [dev] {
        return static_cast<double>(dev->stats().write_ops);
      });
      registry->RegisterCounterGauge(prefix + "device_busy_ns", [dev] {
        return static_cast<double>(dev->stats().busy_time.nanos());
      });
    }
    tier->read_ns = registry->BindHistogram(prefix + "read_ns");
  }
}

void TierStack::RegisterAuditChecks(InvariantAuditor* auditor) {
  tiers_.back().backend->RegisterAuditChecks(auditor);
  for (Tier& tier : tiers_) {
    if (tier.owned_layout != nullptr) {
      tier.owned_layout->RegisterAuditChecks(auditor);
    }
  }
  // Every page in exactly one tier, and the central map agrees with what the
  // per-tier stores actually hold.
  auditor->Register("tier", "residency-coherence", [this]() -> std::optional<std::string> {
    size_t total = 0;
    for (size_t t = 0; t < tiers_.size(); ++t) {
      const Tier& tier = tiers_[t];
      size_t store_pages = 0;
      std::optional<std::string> failure;
      const auto check_key = [&](PageKey key) {
        ++store_pages;
        const auto it = entries_.find(key);
        if (it == entries_.end()) {
          failure = "tier " + tier.spec.name + " holds an unmapped page";
        } else if (it->second.tier != t) {
          failure = "tier " + tier.spec.name + " holds a page mapped to tier " +
                    std::to_string(it->second.tier) + " (double residency)";
        }
      };
      if (tier.is_ram) {
        tier.ram->ForEach(check_key);
      } else {
        tier.backend->ForEachPage(check_key);
      }
      if (failure.has_value()) {
        return failure;
      }
      if (store_pages != tier.lru.size()) {
        return "tier " + tier.spec.name + " store holds " + std::to_string(store_pages) +
               " pages but lru tracks " + std::to_string(tier.lru.size());
      }
      if (tier.is_ram && tier.sub_blocks_used != tier.ram->sub_blocks_used()) {
        return "tier " + tier.spec.name + " sub_blocks " + std::to_string(tier.sub_blocks_used) +
               " != store " + std::to_string(tier.ram->sub_blocks_used());
      }
      total += store_pages;
    }
    if (total != entries_.size()) {
      return "tier stores hold " + std::to_string(total) + " pages but the map has " +
             std::to_string(entries_.size());
    }
    return std::nullopt;
  });
  // Per-tier occupancy: baseline plus inflows equals live pages plus outflows.
  auditor->Register("tier", "occupancy-conservation", [this]() -> std::optional<std::string> {
    for (const Tier& tier : tiers_) {
      const TierCounters& c = tier.counters;
      const uint64_t in = tier.pages_at_baseline + c.landings + c.demotions_in + c.promotions_in;
      const uint64_t out =
          static_cast<uint64_t>(tier.lru.size()) + c.demotions_out + c.promotions_out + c.invalidations;
      if (in != out) {
        return "tier " + tier.spec.name + " occupancy: inflows " + std::to_string(in) +
               " != live+outflows " + std::to_string(out);
      }
    }
    return std::nullopt;
  });
  // Flows move between adjacent tiers only, and never across the stack's ends.
  auditor->Register("tier", "flow-conservation", [this]() -> std::optional<std::string> {
    for (size_t t = 0; t + 1 < tiers_.size(); ++t) {
      const TierCounters& upper = tiers_[t].counters;
      const TierCounters& lower = tiers_[t + 1].counters;
      if (upper.demotions_out != lower.demotions_in) {
        return "boundary " + tiers_[t].spec.name + "/" + tiers_[t + 1].spec.name +
               ": demotions_out " + std::to_string(upper.demotions_out) + " != demotions_in " +
               std::to_string(lower.demotions_in);
      }
      if (lower.promotions_out != upper.promotions_in) {
        return "boundary " + tiers_[t].spec.name + "/" + tiers_[t + 1].spec.name +
               ": promotions_out " + std::to_string(lower.promotions_out) +
               " != promotions_in " + std::to_string(upper.promotions_in);
      }
    }
    if (tiers_.front().counters.demotions_in != 0 || tiers_.front().counters.promotions_out != 0 ||
        tiers_.back().counters.demotions_out != 0 || tiers_.back().counters.promotions_in != 0) {
      return "flow crossed the stack boundary (top received a demotion or bottom emitted one)";
    }
    return std::nullopt;
  });
}

uint64_t TierStack::TierOldestAgeNs(size_t t) const {
  const Tier& tier = tiers_[t];
  if (tier.lru.empty()) {
    return UINT64_MAX;
  }
  return entries_.at(tier.lru.front()).stamp_ns;
}

bool TierStack::TierReleaseOldestFrame(size_t t) {
  Tier& tier = tiers_[t];
  CC_EXPECTS(tier.is_ram);
  // Surplus reserve goes back for free; a packed tier must demote its oldest
  // pages down the stack until a reserve frame becomes releasable.
  while (!tier.ram->ReleaseFrame()) {
    if (!DemoteOldestFrom(t, {})) {
      return false;
    }
  }
  return true;
}

size_t TierStack::ram_frames_held() const {
  size_t total = 0;
  for (const Tier& tier : tiers_) {
    if (tier.ram != nullptr) {
      total += tier.ram->frames_held();
    }
  }
  return total;
}

uint64_t TierStack::total_checksum_mismatches() const {
  uint64_t total = checksum_mismatches_;
  for (const Tier& tier : tiers_) {
    if (tier.owned_layout != nullptr) {
      total += tier.owned_layout->checksum_mismatches();
    }
  }
  total += tiers_.back().backend->checksum_mismatches();
  return total;
}

uint64_t TierStack::total_io_failures() const {
  uint64_t total = io_failures_;
  for (const Tier& tier : tiers_) {
    if (tier.owned_layout != nullptr) {
      total += tier.owned_layout->io_failures();
    }
  }
  total += tiers_.back().backend->io_failures();
  return total;
}

std::optional<size_t> TierStack::TierOf(PageKey key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.tier;
}

IoStatus TierStack::StorePortableBatch(size_t t, std::vector<SwapPageImage> portable, Flow flow,
                                       bool allow_fallthrough) {
  Tier& tier = tiers_[t];
  if (tier.is_bottom) {
    const IoStatus status = tier.backend->WriteBatch(portable);
    if (status != IoStatus::kOk) {
      // The layouts may persist a prefix of a failed batch (LFS appends
      // per-image). Same discipline as the ccache write paths: discard those
      // partial locations, or the backend holds pages the tier map doesn't
      // place here. Keys already mapped to this tier keep their copy — a
      // failed overwrite preserved the old one.
      DiscardPartialPersists(t, portable);
      return status;
    }
    for (const SwapPageImage& image : portable) {
      CommitStore(image.key, t, SubBlocksFor(image.bytes.size()), false, flow);
    }
    return IoStatus::kOk;
  }

  // Encode for this tier's codec; keep the portable originals for fall-through.
  std::vector<SwapPageImage> encoded = portable;
  std::vector<uint8_t> coded(encoded.size(), 0);
  std::vector<PageKey> keys;
  keys.reserve(encoded.size());
  uint64_t incoming = 0;
  for (size_t i = 0; i < encoded.size(); ++i) {
    bool tier_coded = false;
    EncodeForTier(t, &encoded[i], &tier_coded);
    coded[i] = tier_coded ? 1 : 0;
    keys.push_back(encoded[i].key);
    const uint32_t sb = SubBlocksFor(encoded[i].bytes.size());
    const auto it = entries_.find(encoded[i].key);
    if (it != entries_.end() && it->second.tier == t) {
      incoming += sb > it->second.sub_blocks ? sb - it->second.sub_blocks : 0;
    } else {
      incoming += sb;
    }
  }
  MakeRoom(t, incoming, keys);

  std::vector<size_t> leftover;
  if (tier.is_ram) {
    for (size_t i = 0; i < encoded.size(); ++i) {
      const auto make_image = [&] {
        RamTierStore::Image image;
        image.bytes = encoded[i].bytes;
        image.is_compressed = encoded[i].is_compressed;
        image.original_size = encoded[i].original_size;
        image.checksum = encoded[i].checksum;
        image.tier_coded = coded[i] != 0;
        return image;
      };
      // A Put can fail on frame shortage even under the sub-block budget (the
      // pool itself may be empty); demote more until a frame frees or the tier
      // runs dry.
      bool stored = tier.ram->Put(encoded[i].key, make_image());
      while (!stored && DemoteOldestFrom(t, keys)) {
        stored = tier.ram->Put(encoded[i].key, make_image());
      }
      if (stored) {
        CommitStore(encoded[i].key, t, SubBlocksFor(encoded[i].bytes.size()), coded[i] != 0, flow);
      } else {
        leftover.push_back(i);
      }
    }
  } else {
    const IoStatus status = tier.backend->WriteBatch(encoded);
    if (status == IoStatus::kOk) {
      for (size_t i = 0; i < encoded.size(); ++i) {
        CommitStore(encoded[i].key, t, SubBlocksFor(encoded[i].bytes.size()), coded[i] != 0, flow);
      }
    } else {
      ++io_failures_;
      DiscardPartialPersists(t, encoded);
      for (size_t i = 0; i < encoded.size(); ++i) {
        leftover.push_back(i);
      }
    }
  }

  if (leftover.empty()) {
    return IoStatus::kOk;
  }
  if (!allow_fallthrough) {
    return IoStatus::kFailed;
  }
  std::vector<SwapPageImage> down;
  down.reserve(leftover.size());
  for (const size_t i : leftover) {
    down.push_back(std::move(portable[i]));
  }
  return StorePortableBatch(t + 1, std::move(down), flow, true);
}

void TierStack::DiscardPartialPersists(size_t t, std::span<const SwapPageImage> batch) {
  Tier& tier = tiers_[t];
  for (const SwapPageImage& image : batch) {
    const auto it = entries_.find(image.key);
    if (it == entries_.end() || it->second.tier != t) {
      tier.backend->Invalidate(image.key);  // tolerant no-op if never persisted
    }
  }
}

void TierStack::MakeRoom(size_t t, uint64_t incoming_sub_blocks,
                         std::span<const PageKey> exclude) {
  Tier& tier = tiers_[t];
  if (tier.max_sub_blocks == UINT64_MAX ||
      tier.sub_blocks_used + incoming_sub_blocks <= tier.max_sub_blocks) {
    return;
  }
  uint64_t reclaim = 0;
  std::vector<PageKey> victims;
  for (const PageKey key : tier.lru) {
    if (in_flight_key_ == key || KeyListed(exclude, key)) {
      continue;
    }
    victims.push_back(key);
    reclaim += entries_.at(key).sub_blocks;
    if (tier.sub_blocks_used - reclaim + incoming_sub_blocks <= tier.max_sub_blocks) {
      break;
    }
  }
  if (victims.empty()) {
    return;  // everything eligible is in flight; tolerate transient overflow
  }
  std::vector<SwapPageImage> down;
  down.reserve(victims.size());
  for (const PageKey key : victims) {
    down.push_back(MakePortable(t, key));
  }
  const IoStatus status = StorePortableBatch(t + 1, std::move(down), Flow::kDemotion, true);
  if (status != IoStatus::kOk) {
    // Count the victims that actually stayed put (the cascade may have moved a
    // prefix before the disk failed).
    for (const PageKey key : victims) {
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second.tier == t) {
        ++tier.counters.demotion_failures;
      }
    }
  }
}

bool TierStack::DemoteOldestFrom(size_t t, std::span<const PageKey> exclude) {
  Tier& tier = tiers_[t];
  CC_EXPECTS(!tier.is_bottom);
  PageKey victim{};
  bool found = false;
  for (const PageKey key : tier.lru) {
    if (in_flight_key_ == key || KeyListed(exclude, key)) {
      continue;
    }
    victim = key;
    found = true;
    break;
  }
  if (!found) {
    return false;
  }
  std::vector<SwapPageImage> down;
  down.push_back(MakePortable(t, victim));
  if (StorePortableBatch(t + 1, std::move(down), Flow::kDemotion, true) != IoStatus::kOk) {
    ++tier.counters.demotion_failures;
    return false;
  }
  return true;
}

SwapPageImage TierStack::MakePortable(size_t t, PageKey key) {
  Tier& tier = tiers_[t];
  const Entry& entry = entries_.at(key);
  SwapPageImage image;
  image.key = key;
  if (tier.is_ram) {
    const RamTierStore::Image& stored = tier.ram->Find(key);
    clock_->Advance(costs_->CopyCost(stored.bytes.size()), TimeCategory::kCopy);
    image.bytes = stored.bytes;
    image.is_compressed = stored.is_compressed;
    image.original_size = stored.original_size;
    image.checksum = stored.checksum;
  } else {
    ReadResult result = tier.backend->ReadPage(key, false);
    image.bytes = std::move(result.bytes);
    image.is_compressed = result.is_compressed;
    image.original_size = result.original_size;
    image.checksum = result.checksum;
  }
  if (entry.tier_coded && tier.codec != nullptr) {
    std::vector<uint8_t> raw(image.original_size);
    if (tier.codec->TryDecompress(image.bytes, raw)) {
      clock_->Advance(costs_->DecompressCost(image.original_size), TimeCategory::kDecompression);
      image.bytes = std::move(raw);
      image.is_compressed = false;
      if (image.checksum != 0) {
        image.checksum = Crc32(image.bytes);
      }
    }
    // Undecodable tier-coded bytes travel verbatim; the final read detects the
    // damage. Unreachable without a corruption source on RAM/SSD tiers.
  }
  return image;
}

void TierStack::EncodeForTier(size_t t, SwapPageImage* image, bool* tier_coded) {
  Tier& tier = tiers_[t];
  *tier_coded = false;
  if (tier.codec == nullptr || IsZeroPageMarker(image->bytes)) {
    return;
  }
  std::vector<uint8_t> raw;
  if (image->is_compressed) {
    raw.resize(image->original_size);
    if (!stack_codec_->TryDecompress(image->bytes, raw)) {
      return;  // corrupt image: carry verbatim so the damage stays detectable
    }
    clock_->Advance(costs_->DecompressCost(image->original_size), TimeCategory::kDecompression);
  } else {
    raw = image->bytes;
  }
  std::vector<uint8_t> enc(tier.codec->MaxCompressedSize(raw.size()));
  const size_t enc_size = tier.codec->Compress(raw, enc);
  clock_->Advance(costs_->CompressCost(raw.size()), TimeCategory::kCompression);
  ++tier.counters.transcodes;
  // Keep the re-encoding only when it strictly shrinks the stored bytes;
  // otherwise the incoming form (stack bitstream or raw) stays, which the read
  // path can always serve without this tier's codec.
  if (enc_size < image->bytes.size()) {
    enc.resize(enc_size);
    image->bytes = std::move(enc);
    image->is_compressed = true;
    *tier_coded = true;
    if (image->checksum != 0) {
      image->checksum = Crc32(image->bytes);
    }
  }
}

void TierStack::CommitStore(PageKey key, size_t t, uint32_t sub_blocks, bool tier_coded,
                            Flow flow) {
  Tier& tier = tiers_[t];
  const uint64_t now_ns = static_cast<uint64_t>(clock_->Now().nanos());
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.tier == t) {
    // In-place overwrite: the store already replaced the bytes; the old copy
    // counts as invalidated so occupancy stays conserved.
    tier.sub_blocks_used += sub_blocks;
    tier.sub_blocks_used -= it->second.sub_blocks;
    tier.lru.erase(it->second.lru_it);
    tier.lru.push_back(key);
    it->second.lru_it = std::prev(tier.lru.end());
    it->second.sub_blocks = sub_blocks;
    it->second.tier_coded = tier_coded;
    it->second.stamp_ns = now_ns;
    ++tier.counters.invalidations;
  } else {
    if (it != entries_.end()) {
      const size_t from = it->second.tier;
      const Removal kind = flow == Flow::kDemotion   ? Removal::kDemoted
                           : flow == Flow::kPromotion ? Removal::kPromoted
                                                      : Removal::kInvalidated;
      RemoveFrom(from, key, kind);
      if (flow == Flow::kDemotion) {
        // A demotion that fell through intermediate full tiers is booked as
        // transiting each one, so boundary flow conservation holds per hop.
        for (size_t mid = from + 1; mid < t; ++mid) {
          ++tiers_[mid].counters.demotions_in;
          ++tiers_[mid].counters.demotions_out;
        }
      }
      if (tracer_ != nullptr && flow != Flow::kLanding) {
        tracer_->Record(flow == Flow::kDemotion ? TraceEventKind::kTierDemotion
                                                : TraceEventKind::kTierPromotion,
                        clock_->Now(), key, from, t);
      }
    } else {
      CC_ASSERT(flow == Flow::kLanding);  // demotions/promotions move existing entries
    }
    tier.lru.push_back(key);
    entries_[key] = Entry{t, sub_blocks, tier_coded, now_ns, std::prev(tier.lru.end())};
    tier.sub_blocks_used += sub_blocks;
  }
  switch (flow) {
    case Flow::kLanding:
      ++tier.counters.landings;
      break;
    case Flow::kDemotion:
      ++tier.counters.demotions_in;
      break;
    case Flow::kPromotion:
      ++tier.counters.promotions_in;
      break;
  }
}

void TierStack::RemoveFrom(size_t t, PageKey key, Removal kind) {
  Tier& tier = tiers_[t];
  const auto it = entries_.find(key);
  CC_EXPECTS(it != entries_.end() && it->second.tier == t);
  if (tier.is_ram) {
    tier.ram->Erase(key);
  } else {
    tier.backend->Invalidate(key);
  }
  tier.lru.erase(it->second.lru_it);
  tier.sub_blocks_used -= it->second.sub_blocks;
  entries_.erase(it);
  switch (kind) {
    case Removal::kInvalidated:
      ++tier.counters.invalidations;
      break;
    case Removal::kDemoted:
      ++tier.counters.demotions_out;
      break;
    case Removal::kPromoted:
      ++tier.counters.promotions_out;
      break;
  }
}

void TierStack::TouchLru(size_t t, Entry* entry, PageKey key) {
  Tier& tier = tiers_[t];
  tier.lru.erase(entry->lru_it);
  tier.lru.push_back(key);
  entry->lru_it = std::prev(tier.lru.end());
  entry->stamp_ns = static_cast<uint64_t>(clock_->Now().nanos());
}

void TierStack::DecodeTierImage(Tier& tier, ReadResult* result) {
  CC_ASSERT(tier.codec != nullptr);
  std::vector<uint8_t> raw(result->original_size);
  if (!tier.codec->TryDecompress(result->bytes, raw)) {
    ++checksum_mismatches_;  // detected corruption, surfaced like a CRC failure
    result->status = IoStatus::kCorrupt;
    return;
  }
  clock_->Advance(costs_->DecompressCost(result->original_size), TimeCategory::kDecompression);
  result->bytes = std::move(raw);
  result->is_compressed = false;
  result->checksum = result->checksum != 0 ? Crc32(result->bytes) : 0;
}

}  // namespace compcache
