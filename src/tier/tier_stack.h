// TierStack: a stack of compressed memory tiers behind the compression cache.
//
// The stack implements the CompressedSwapBackend contract, so to the ccache,
// pager, and write-behind decorator it *is* the backing store; internally it
// routes each written image through a size/heat classifier onto one of N
// tiers — compressed-DRAM victim frames, a flash-class second device, and the
// machine's configured disk swap layout at the bottom — and drives demotion
// (capacity overflow, arbiter reclaim) and promotion (hot read hits) flows
// between adjacent tiers. Every page lives in exactly one tier; per-tier
// occupancy and flow conservation are audited, and the degenerate stack (no
// intermediate tiers) forwards verbatim, byte-identical to the unwrapped
// machine.
#ifndef COMPCACHE_TIER_TIER_STACK_H_
#define COMPCACHE_TIER_TIER_STACK_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"
#include "disk/disk_device.h"
#include "fs/file_system.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "swap/compressed_swap_backend.h"
#include "tier/classifier.h"
#include "tier/ram_store.h"
#include "tier/tier_config.h"
#include "vm/frame_source.h"
#include "vm/page_key.h"

namespace compcache {

// Per-tier event counters, published as "tier.<name>.*" counter gauges.
// Conservation identities (audited, and re-checked over bench JSON):
//   baseline + landings + demotions_in + promotions_in
//     == pages + demotions_out + promotions_out + invalidations      (per tier)
//   demotions_out[i] == demotions_in[i+1]                            (boundary)
//   promotions_out[i+1] == promotions_in[i]                          (boundary)
struct TierCounters {
  uint64_t landings = 0;        // images stored directly from a WriteBatch
  uint64_t demotions_in = 0;    // received from the tier above
  uint64_t demotions_out = 0;   // pushed to the tier below
  uint64_t promotions_in = 0;   // received from the tier below (hot reads)
  uint64_t promotions_out = 0;  // pulled up by the tier above
  uint64_t invalidations = 0;   // dropped (explicit Invalidate or overwrite)
  uint64_t reads = 0;           // fault-path reads served by this tier
  uint64_t transcodes = 0;      // images re-encoded with the tier codec
  uint64_t demotion_failures = 0;  // demotions aborted (disk write failed)
};

class TierStack : public CompressedSwapBackend {
 public:
  // `bottom` is the machine's configured swap layout; it becomes the unbounded
  // lowest tier. `stack_codec` is the machine codec images arrive encoded with.
  TierStack(Clock* clock, const CostModel* costs, FrameSource* frames,
            Codec* stack_codec, std::unique_ptr<CompressedSwapBackend> bottom,
            TierOptions options);
  ~TierStack() override;

  // --- CompressedSwapBackend ---
  IoStatus WriteBatch(std::span<const SwapPageImage> pages) override;
  // Opens a deferred window on *every* device in the stack (bottom disk plus
  // each SSD tier) so a write-behind submit defers all device time, not just
  // the bottom disk's: device_time sums the windows, complete_at is their max.
  WriteTicket SubmitWriteBatch(std::span<const SwapPageImage> pages) override;
  DiskDevice* device() override { return tiers_.back().backend->device(); }
  bool Contains(PageKey key) const override { return entries_.contains(key); }
  ReadResult ReadPage(PageKey key, bool collect_coresidents) override;
  void Invalidate(PageKey key) override;
  MountStats Mount() override;
  void ForEachPage(const std::function<void(PageKey)>& fn) const override;
  void RegisterAuditChecks(InvariantAuditor* auditor) override;
  void ResetStats() override;
  void SetVerifyChecksums(bool verify) override;
  void BindMetrics(MetricRegistry* registry) override;
  void SetTracer(EventTracer* tracer) override;

  // --- machine integration ---
  size_t num_tiers() const { return tiers_.size(); }
  const std::string& tier_name(size_t t) const { return tiers_[t].spec.name; }
  bool tier_is_ram(size_t t) const { return tiers_[t].is_ram; }
  SimDuration tier_age_penalty(size_t t) const { return tiers_[t].spec.age_penalty; }
  // Arbiter hooks for compressed-RAM tiers: the virtual timestamp of the
  // tier's LRU entry (UINT64_MAX when empty), and demote-until-a-frame-frees.
  uint64_t TierOldestAgeNs(size_t t) const;
  bool TierReleaseOldestFrame(size_t t);
  // Frames currently held by compressed-RAM tiers (frame-conservation term).
  size_t ram_frames_held() const;
  // Integrity counters summed across the stack's own detection and every tier
  // backend (the base-class accessors only see this object's).
  uint64_t total_checksum_mismatches() const;
  uint64_t total_io_failures() const;
  // The adopted disk layout (for the machine's typed-alias debug check).
  CompressedSwapBackend* bottom_backend() { return tiers_.back().backend; }

  // --- introspection (tests, Report) ---
  const TierCounters& tier_counters(size_t t) const { return tiers_[t].counters; }
  size_t tier_pages(size_t t) const { return tiers_[t].lru.size(); }
  uint64_t tier_sub_blocks(size_t t) const { return tiers_[t].sub_blocks_used; }
  // Tier index currently holding `key`, if any.
  std::optional<size_t> TierOf(PageKey key) const;
  TierClassifier& classifier() { return classifier_; }
  DiskDevice* ssd_device(size_t t) { return tiers_[t].ssd_device.get(); }

 private:
  enum class Flow { kLanding, kDemotion, kPromotion };
  enum class Removal { kInvalidated, kDemoted, kPromoted };

  struct Entry {
    size_t tier = 0;
    uint32_t sub_blocks = 0;
    bool tier_coded = false;    // stored bytes use the tier codec
    uint64_t stamp_ns = 0;      // last landing/touch (LRU age for the arbiter)
    std::list<PageKey>::iterator lru_it;
  };

  struct Tier {
    TierSpec spec;
    bool is_bottom = false;
    bool is_ram = false;
    uint64_t max_sub_blocks = UINT64_MAX;
    std::unique_ptr<Codec> codec;  // null = inherit the stack codec
    // kCompressedRam medium:
    std::unique_ptr<RamTierStore> ram;
    // kSsd medium (own device + file system + clustered layout):
    std::unique_ptr<DiskDevice> ssd_device;
    std::unique_ptr<FileSystem> ssd_fs;
    std::unique_ptr<CompressedSwapBackend> owned_layout;
    CompressedSwapBackend* backend = nullptr;  // owned_layout or the bottom
    std::list<PageKey> lru;  // front = oldest
    uint64_t sub_blocks_used = 0;
    uint64_t pages_at_baseline = 0;  // occupancy at construction/Mount/ResetStats
    TierCounters counters;
    LatencyHistogram* read_ns = nullptr;  // owned by the bound registry
  };

  // Stores stack-portable images (stack-codec bitstream, raw page, or zero
  // marker) into tier `t`, transcoding on entry when the tier has its own
  // codec and demoting the tier's LRU pages downward to make room. Images
  // that still cannot be stored fall through to the next tier (unless
  // `allow_fallthrough` is false, the promotion case, where the store aborts
  // with kFailed and the page stays put). Only the bottom tier can fail a
  // physical write; its kFailed propagates up with nothing recorded.
  IoStatus StorePortableBatch(size_t t, std::vector<SwapPageImage> portable, Flow flow,
                              bool allow_fallthrough);
  // After a failed device write of `batch` into tier `t`: invalidates every
  // batch key the tier map does not place in `t`, discarding any prefix the
  // layout persisted before failing (LFS appends per-image). Keys mapped to
  // `t` keep their copy — a failed overwrite preserved the old one.
  void DiscardPartialPersists(size_t t, std::span<const SwapPageImage> batch);
  // Demotes LRU pages of tier `t` (skipping `exclude` and the in-flight key)
  // until `incoming_sub_blocks` fit under the tier's capacity. Best effort:
  // a failed demotion leaves the tier transiently over capacity.
  void MakeRoom(size_t t, uint64_t incoming_sub_blocks,
                std::span<const PageKey> exclude);
  // Reads tier `t`'s copy of `key` back into stack-portable form (decoding a
  // tier-coded image to a raw page), charging the tier's access cost.
  SwapPageImage MakePortable(size_t t, PageKey key);
  // Re-encodes a portable image for tier `t`'s codec. No-op (verbatim) for
  // inheriting tiers, zero markers, and undecodable images.
  void EncodeForTier(size_t t, SwapPageImage* image, bool* tier_coded);
  // Bookkeeping after a physical store of `key` into tier `t`: moves or
  // refreshes the entry, removes any old copy, bumps flow counters.
  void CommitStore(PageKey key, size_t t, uint32_t sub_blocks, bool tier_coded, Flow flow);
  // Physical removal + bookkeeping + the removal-kind counter.
  void RemoveFrom(size_t t, PageKey key, Removal kind);
  // Demotes tier `t`'s LRU page (skipping `exclude` and the in-flight key) one
  // tier down; false when nothing was eligible or the demotion failed.
  bool DemoteOldestFrom(size_t t, std::span<const PageKey> exclude);
  void TouchLru(size_t t, Entry* entry, PageKey key);
  // Decodes a tier-coded image to the raw page in `result` (is_compressed
  // becomes false). On decode failure marks the result kCorrupt.
  void DecodeTierImage(Tier& tier, ReadResult* result);

  static uint32_t SubBlocksFor(size_t bytes) { return RamTierStore::SubBlocksFor(bytes); }

  Clock* clock_;
  const CostModel* costs_;
  FrameSource* frames_;
  Codec* stack_codec_;
  TierOptions options_;
  TierClassifier classifier_;
  std::vector<Tier> tiers_;         // fastest first; back() = bottom (disk)
  std::unique_ptr<CompressedSwapBackend> bottom_;  // owned; aliased by back().backend
  size_t first_device_tier_ = 0;    // raw images never land above this index
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  std::optional<PageKey> in_flight_key_;  // promotion guard: never demoted
  EventTracer* tracer_ = nullptr;
};

}  // namespace compcache

#endif  // COMPCACHE_TIER_TIER_STACK_H_
