// Configuration for the multi-tier compressed memory hierarchy.
//
// The paper's compression cache is one fixed point on a spectrum: compressed
// pages live in DRAM until the arbiter reclaims them, then go straight to the
// swap device. A TierStack generalizes the backing side of that design into a
// stack of N tiers — compressed DRAM victim frames, a compressed "SSD" with
// its own (much faster, position-free) device cost model, and finally the
// paper's disk swap layout — each with its own codec, capacity, and access
// cost, so tier-size splits and per-tier codec choices become measurable
// configuration instead of architecture (see ZipCache / CRAM in PAPERS.md).
#ifndef COMPCACHE_TIER_TIER_CONFIG_H_
#define COMPCACHE_TIER_TIER_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/time_types.h"
#include "util/units.h"

namespace compcache {

// Storage medium of one intermediate tier. The bottom (disk) tier is implicit:
// it is always the machine's configured compressed-swap layout.
enum class TierMedium {
  kCompressedRam,  // compressed page images held in frames from the machine pool
  kSsd,            // second DiskDevice with a position-free latency/bandwidth model
};

struct TierSpec {
  // Unique label; appears in metric names ("tier.<name>.landings") and traces.
  std::string name = "ssd";
  TierMedium medium = TierMedium::kSsd;
  // Payload capacity, quantized to 1 KB sub-blocks. Exceeding it demotes the
  // tier's LRU pages to the next tier down. The implicit disk tier is unbounded.
  uint64_t capacity_bytes = 4 * kMiB;
  // Per-tier codec (any §16 registry name, including "adaptive"). Empty =
  // inherit the machine codec: images move between inheriting tiers verbatim,
  // byte-for-byte. A non-empty codec makes this a transcoding tier: demoted
  // images are decoded and re-encoded on entry, and reads return the raw page.
  std::string codec;
  // Arbiter age bias for kCompressedRam tiers (how long the tier's frames are
  // favored over other memory consumers). Ignored for device tiers, which hold
  // no machine frames.
  SimDuration age_penalty = SimDuration::Seconds(8);
  // kSsd timing: flash-class, position-free (NetworkLinkModel underneath).
  SimDuration ssd_latency = SimDuration::Micros(80);
  double ssd_bandwidth_bytes_per_sec = 500.0e6;
  SimDuration ssd_io_setup = SimDuration::Micros(10);
  uint64_t ssd_capacity_bytes = 1024 * kMiB;  // device size (not the tier cap)
};

// Size/heat placement policy: where an image evicted from the compression
// cache lands, and when a read promotes a page up one tier.
struct TierClassifierOptions {
  // A page read (faulted in) within this window of virtual time counts as hot:
  // it lands high on its next eviction, and a hot read hit in a lower tier
  // promotes the stored copy one tier up.
  SimDuration hot_window = SimDuration::Millis(50);
  bool promote_on_hot_read = true;
};

struct TierOptions {
  // Off by default: the machine is wired exactly as before and no TierStack is
  // constructed. Requires use_compression_cache when enabled.
  bool enabled = false;
  // Intermediate tiers, fastest first. The disk tier (the configured
  // compressed-swap layout) is always appended below them. Empty = the
  // degenerate stack, pinned byte-identical to the unwrapped machine.
  std::vector<TierSpec> tiers;
  TierClassifierOptions classifier;
};

}  // namespace compcache

#endif  // COMPCACHE_TIER_TIER_CONFIG_H_
