#include "tier/ram_store.h"

#include <utility>

#include "util/assert.h"

namespace compcache {

RamTierStore::~RamTierStore() {
  for (const FrameId id : held_) {
    frames_->FreeFrame(id);
  }
}

bool RamTierStore::Reserve(size_t frames) {
  while (held_.size() < frames) {
    const auto frame = frames_->TryAllocateFrame();
    if (!frame.has_value()) {
      return false;
    }
    held_.push_back(*frame);
  }
  return true;
}

bool RamTierStore::ReleaseFrame() {
  if (held_.empty()) {
    return false;
  }
  const uint64_t after = static_cast<uint64_t>(held_.size() - 1) * kSubBlocksPerFrame;
  if (after < sub_blocks_used_) {
    return false;
  }
  frames_->FreeFrame(held_.back());
  held_.pop_back();
  return true;
}

bool RamTierStore::Put(PageKey key, Image image) {
  const uint32_t new_sb = SubBlocksFor(image.bytes.size());
  uint32_t old_sb = 0;
  const auto it = images_.find(key);
  if (it != images_.end()) {
    old_sb = SubBlocksFor(it->second.bytes.size());
  }
  // Reserve for the peak (old + new coexist only in this accounting instant);
  // an overwrite that shrinks needs no growth and cannot fail.
  const uint64_t target = sub_blocks_used_ - old_sb + new_sb;
  const size_t needed = static_cast<size_t>(
      (target + kSubBlocksPerFrame - 1) / kSubBlocksPerFrame);
  if (needed > held_.size()) {
    const size_t before = held_.size();
    if (!Reserve(needed)) {
      // Roll back any partial grab so failure leaves no state change.
      while (held_.size() > before) {
        frames_->FreeFrame(held_.back());
        held_.pop_back();
      }
      return false;
    }
  }
  images_[key] = std::move(image);
  sub_blocks_used_ = target;
  return true;
}

RamTierStore::Image RamTierStore::Take(PageKey key) {
  const auto it = images_.find(key);
  CC_EXPECTS(it != images_.end());
  Image image = std::move(it->second);
  sub_blocks_used_ -= SubBlocksFor(image.bytes.size());
  images_.erase(it);
  // The freed footprint stays in the wired reserve; only ReleaseFrame (the
  // arbiter hook) returns frames to the pool.
  return image;
}

}  // namespace compcache
