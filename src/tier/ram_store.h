// Frame-accounted store for a compressed-DRAM tier.
//
// Holds compressed page images in memory, charging their footprint against
// real frames from the machine pool at a 1 KB sub-block quantum (the same
// quantum as superblock ccache packing and swap fragments), so the
// machine-wide frame-conservation audit sees the tier's DRAM for what it is.
//
// The frames are a *wired reserve*, like the LFS segment buffer: the TierStack
// pre-reserves the tier's capacity at construction, and Take/Erase keep the
// freed frames in the reserve rather than returning them to the pool. This
// matters because tier inserts happen exactly at memory pressure — ccache
// writes back when the pool is empty — so a tier that allocated lazily would
// never hold anything. The reserve shrinks only through ReleaseFrame() (the
// arbiter's reclaim hook) and regrows opportunistically in Put. Frames are
// obtained with TryAllocateFrame only — never through the arbiter — so a tier
// insert can never recurse into frame reclamation; when the reserve cannot
// cover an insert and the pool has no spare frame, the Put fails and the
// TierStack demotes instead.
#ifndef COMPCACHE_TIER_RAM_STORE_H_
#define COMPCACHE_TIER_RAM_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/units.h"
#include "vm/frame_source.h"
#include "vm/page_key.h"

namespace compcache {

class RamTierStore {
 public:
  static constexpr uint32_t kSubBlockBytes = kPageSize / 4;
  static constexpr uint32_t kSubBlocksPerFrame = 4;

  struct Image {
    std::vector<uint8_t> bytes;
    bool is_compressed = true;
    uint32_t original_size = kPageSize;
    uint32_t checksum = 0;      // as stored; 0 = none recorded
    bool tier_coded = false;    // bytes are this tier's codec, not the stack's
  };

  explicit RamTierStore(FrameSource* frames) : frames_(frames) {}
  ~RamTierStore();

  RamTierStore(const RamTierStore&) = delete;
  RamTierStore& operator=(const RamTierStore&) = delete;

  static uint32_t SubBlocksFor(size_t bytes) {
    const uint32_t sb = static_cast<uint32_t>((bytes + kSubBlockBytes - 1) / kSubBlockBytes);
    return sb < 1 ? 1 : sb;
  }

  // Best-effort: grows the wired reserve toward `frames` held frames (never
  // shrinks). Returns true when the target is reached.
  bool Reserve(size_t frames);

  // Returns one reserve frame to the pool, provided the remaining reserve
  // still covers the stored images. Returns false when the tier is packed
  // (every held frame is needed) or the reserve is empty.
  bool ReleaseFrame();

  // Inserts or replaces `key`. Returns false — with no state change — when the
  // added footprint needs frames beyond the reserve that the pool cannot
  // supply right now.
  bool Put(PageKey key, Image image);

  bool Contains(PageKey key) const { return images_.contains(key); }
  // Must be present.
  const Image& Find(PageKey key) const { return images_.at(key); }

  // Removes `key` (must be present) and returns its image; the freed frames
  // stay in the wired reserve.
  Image Take(PageKey key);
  void Erase(PageKey key) { (void)Take(key); }

  void ForEach(const std::function<void(PageKey)>& fn) const {
    for (const auto& [key, image] : images_) {
      fn(key);
    }
  }

  size_t pages() const { return images_.size(); }
  uint64_t sub_blocks_used() const { return sub_blocks_used_; }
  size_t frames_held() const { return held_.size(); }

 private:
  FrameSource* frames_;
  std::unordered_map<PageKey, Image, PageKeyHash> images_;
  std::vector<FrameId> held_;
  uint64_t sub_blocks_used_ = 0;
};

}  // namespace compcache

#endif  // COMPCACHE_TIER_RAM_STORE_H_
