
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/heap_test.cc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o" "gcc" "tests/CMakeFiles/heap_test.dir/heap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/cc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/cc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cc_bcache.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ccache/CMakeFiles/cc_ccache.dir/DependInfo.cmake"
  "/root/repo/build/src/swap/CMakeFiles/cc_swap.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cc_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/cc_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/cc_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/cc_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
