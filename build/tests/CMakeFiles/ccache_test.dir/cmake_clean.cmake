file(REMOVE_RECURSE
  "CMakeFiles/ccache_test.dir/ccache_test.cc.o"
  "CMakeFiles/ccache_test.dir/ccache_test.cc.o.d"
  "ccache_test"
  "ccache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
