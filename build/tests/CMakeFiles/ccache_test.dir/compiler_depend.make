# Empty compiler generated dependencies file for ccache_test.
# This may be replaced when dependencies are built.
