# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("compress")
subdirs("disk")
subdirs("fs")
subdirs("swap")
subdirs("ccache")
subdirs("vm")
subdirs("policy")
subdirs("core")
subdirs("apps")
subdirs("model")
