# Empty compiler generated dependencies file for cc_util.
# This may be replaced when dependencies are built.
