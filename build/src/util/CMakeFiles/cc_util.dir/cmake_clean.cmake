file(REMOVE_RECURSE
  "CMakeFiles/cc_util.dir/logging.cc.o"
  "CMakeFiles/cc_util.dir/logging.cc.o.d"
  "libcc_util.a"
  "libcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
