file(REMOVE_RECURSE
  "libcc_util.a"
)
