file(REMOVE_RECURSE
  "CMakeFiles/cc_policy.dir/memory_arbiter.cc.o"
  "CMakeFiles/cc_policy.dir/memory_arbiter.cc.o.d"
  "libcc_policy.a"
  "libcc_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
