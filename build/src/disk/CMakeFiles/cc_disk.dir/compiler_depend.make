# Empty compiler generated dependencies file for cc_disk.
# This may be replaced when dependencies are built.
