file(REMOVE_RECURSE
  "CMakeFiles/cc_disk.dir/disk_device.cc.o"
  "CMakeFiles/cc_disk.dir/disk_device.cc.o.d"
  "CMakeFiles/cc_disk.dir/disk_model.cc.o"
  "CMakeFiles/cc_disk.dir/disk_model.cc.o.d"
  "libcc_disk.a"
  "libcc_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
