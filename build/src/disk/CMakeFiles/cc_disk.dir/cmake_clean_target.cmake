file(REMOVE_RECURSE
  "libcc_disk.a"
)
