file(REMOVE_RECURSE
  "libcc_model.a"
)
