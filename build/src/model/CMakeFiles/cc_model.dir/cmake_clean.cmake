file(REMOVE_RECURSE
  "CMakeFiles/cc_model.dir/analytic.cc.o"
  "CMakeFiles/cc_model.dir/analytic.cc.o.d"
  "libcc_model.a"
  "libcc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
