# Empty compiler generated dependencies file for cc_model.
# This may be replaced when dependencies are built.
