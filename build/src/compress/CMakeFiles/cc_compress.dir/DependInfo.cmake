
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/lzrw1.cc" "src/compress/CMakeFiles/cc_compress.dir/lzrw1.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/lzrw1.cc.o.d"
  "/root/repo/src/compress/lzrw1a.cc" "src/compress/CMakeFiles/cc_compress.dir/lzrw1a.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/lzrw1a.cc.o.d"
  "/root/repo/src/compress/pagegen.cc" "src/compress/CMakeFiles/cc_compress.dir/pagegen.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/pagegen.cc.o.d"
  "/root/repo/src/compress/registry.cc" "src/compress/CMakeFiles/cc_compress.dir/registry.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/registry.cc.o.d"
  "/root/repo/src/compress/rle.cc" "src/compress/CMakeFiles/cc_compress.dir/rle.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/rle.cc.o.d"
  "/root/repo/src/compress/wk.cc" "src/compress/CMakeFiles/cc_compress.dir/wk.cc.o" "gcc" "src/compress/CMakeFiles/cc_compress.dir/wk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
