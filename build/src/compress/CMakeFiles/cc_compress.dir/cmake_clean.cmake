file(REMOVE_RECURSE
  "CMakeFiles/cc_compress.dir/lzrw1.cc.o"
  "CMakeFiles/cc_compress.dir/lzrw1.cc.o.d"
  "CMakeFiles/cc_compress.dir/lzrw1a.cc.o"
  "CMakeFiles/cc_compress.dir/lzrw1a.cc.o.d"
  "CMakeFiles/cc_compress.dir/pagegen.cc.o"
  "CMakeFiles/cc_compress.dir/pagegen.cc.o.d"
  "CMakeFiles/cc_compress.dir/registry.cc.o"
  "CMakeFiles/cc_compress.dir/registry.cc.o.d"
  "CMakeFiles/cc_compress.dir/rle.cc.o"
  "CMakeFiles/cc_compress.dir/rle.cc.o.d"
  "CMakeFiles/cc_compress.dir/wk.cc.o"
  "CMakeFiles/cc_compress.dir/wk.cc.o.d"
  "libcc_compress.a"
  "libcc_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
