file(REMOVE_RECURSE
  "CMakeFiles/cc_apps.dir/compare.cc.o"
  "CMakeFiles/cc_apps.dir/compare.cc.o.d"
  "CMakeFiles/cc_apps.dir/gold.cc.o"
  "CMakeFiles/cc_apps.dir/gold.cc.o.d"
  "CMakeFiles/cc_apps.dir/isca.cc.o"
  "CMakeFiles/cc_apps.dir/isca.cc.o.d"
  "CMakeFiles/cc_apps.dir/sort.cc.o"
  "CMakeFiles/cc_apps.dir/sort.cc.o.d"
  "CMakeFiles/cc_apps.dir/thrasher.cc.o"
  "CMakeFiles/cc_apps.dir/thrasher.cc.o.d"
  "CMakeFiles/cc_apps.dir/wordgen.cc.o"
  "CMakeFiles/cc_apps.dir/wordgen.cc.o.d"
  "libcc_apps.a"
  "libcc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
