file(REMOVE_RECURSE
  "libcc_apps.a"
)
