# Empty dependencies file for cc_apps.
# This may be replaced when dependencies are built.
