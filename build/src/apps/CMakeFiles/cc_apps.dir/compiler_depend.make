# Empty compiler generated dependencies file for cc_apps.
# This may be replaced when dependencies are built.
