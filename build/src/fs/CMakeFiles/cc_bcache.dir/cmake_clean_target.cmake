file(REMOVE_RECURSE
  "libcc_bcache.a"
)
