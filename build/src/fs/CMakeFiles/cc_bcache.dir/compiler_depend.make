# Empty compiler generated dependencies file for cc_bcache.
# This may be replaced when dependencies are built.
