file(REMOVE_RECURSE
  "CMakeFiles/cc_bcache.dir/buffer_cache.cc.o"
  "CMakeFiles/cc_bcache.dir/buffer_cache.cc.o.d"
  "libcc_bcache.a"
  "libcc_bcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_bcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
