file(REMOVE_RECURSE
  "CMakeFiles/cc_fs.dir/file_system.cc.o"
  "CMakeFiles/cc_fs.dir/file_system.cc.o.d"
  "libcc_fs.a"
  "libcc_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
