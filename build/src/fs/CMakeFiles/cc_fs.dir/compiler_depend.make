# Empty compiler generated dependencies file for cc_fs.
# This may be replaced when dependencies are built.
