file(REMOVE_RECURSE
  "libcc_fs.a"
)
