file(REMOVE_RECURSE
  "libcc_swap.a"
)
