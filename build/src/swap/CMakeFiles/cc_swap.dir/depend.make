# Empty dependencies file for cc_swap.
# This may be replaced when dependencies are built.
