file(REMOVE_RECURSE
  "CMakeFiles/cc_swap.dir/clustered_swap.cc.o"
  "CMakeFiles/cc_swap.dir/clustered_swap.cc.o.d"
  "CMakeFiles/cc_swap.dir/fixed_compressed_swap.cc.o"
  "CMakeFiles/cc_swap.dir/fixed_compressed_swap.cc.o.d"
  "CMakeFiles/cc_swap.dir/fixed_swap.cc.o"
  "CMakeFiles/cc_swap.dir/fixed_swap.cc.o.d"
  "CMakeFiles/cc_swap.dir/lfs_swap.cc.o"
  "CMakeFiles/cc_swap.dir/lfs_swap.cc.o.d"
  "libcc_swap.a"
  "libcc_swap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_swap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
