# CMake generated Testfile for 
# Source directory: /root/repo/src/ccache
# Build directory: /root/repo/build/src/ccache
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
