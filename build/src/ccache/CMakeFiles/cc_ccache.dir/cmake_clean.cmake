file(REMOVE_RECURSE
  "CMakeFiles/cc_ccache.dir/compression_cache.cc.o"
  "CMakeFiles/cc_ccache.dir/compression_cache.cc.o.d"
  "libcc_ccache.a"
  "libcc_ccache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_ccache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
