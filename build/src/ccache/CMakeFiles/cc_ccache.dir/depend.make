# Empty dependencies file for cc_ccache.
# This may be replaced when dependencies are built.
