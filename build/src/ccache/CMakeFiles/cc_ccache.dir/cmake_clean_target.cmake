file(REMOVE_RECURSE
  "libcc_ccache.a"
)
