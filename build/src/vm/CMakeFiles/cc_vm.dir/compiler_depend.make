# Empty compiler generated dependencies file for cc_vm.
# This may be replaced when dependencies are built.
