file(REMOVE_RECURSE
  "CMakeFiles/cc_vm.dir/pager.cc.o"
  "CMakeFiles/cc_vm.dir/pager.cc.o.d"
  "libcc_vm.a"
  "libcc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
