file(REMOVE_RECURSE
  "libcc_vm.a"
)
