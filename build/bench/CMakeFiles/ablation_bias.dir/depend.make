# Empty dependencies file for ablation_bias.
# This may be replaced when dependencies are built.
