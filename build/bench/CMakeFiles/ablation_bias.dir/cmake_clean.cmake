file(REMOVE_RECURSE
  "CMakeFiles/ablation_bias.dir/ablation_bias.cc.o"
  "CMakeFiles/ablation_bias.dir/ablation_bias.cc.o.d"
  "ablation_bias"
  "ablation_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
