# Empty compiler generated dependencies file for fig1a_bandwidth.
# This may be replaced when dependencies are built.
