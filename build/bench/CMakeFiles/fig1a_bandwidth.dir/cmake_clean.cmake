file(REMOVE_RECURSE
  "CMakeFiles/fig1a_bandwidth.dir/fig1a_bandwidth.cc.o"
  "CMakeFiles/fig1a_bandwidth.dir/fig1a_bandwidth.cc.o.d"
  "fig1a_bandwidth"
  "fig1a_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
