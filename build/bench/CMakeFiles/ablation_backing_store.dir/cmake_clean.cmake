file(REMOVE_RECURSE
  "CMakeFiles/ablation_backing_store.dir/ablation_backing_store.cc.o"
  "CMakeFiles/ablation_backing_store.dir/ablation_backing_store.cc.o.d"
  "ablation_backing_store"
  "ablation_backing_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backing_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
