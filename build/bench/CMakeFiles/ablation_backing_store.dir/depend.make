# Empty dependencies file for ablation_backing_store.
# This may be replaced when dependencies are built.
