# Empty dependencies file for table1_applications.
# This may be replaced when dependencies are built.
