# Empty compiler generated dependencies file for fig1b_memref.
# This may be replaced when dependencies are built.
