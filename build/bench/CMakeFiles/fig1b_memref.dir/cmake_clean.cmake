file(REMOVE_RECURSE
  "CMakeFiles/fig1b_memref.dir/fig1b_memref.cc.o"
  "CMakeFiles/fig1b_memref.dir/fig1b_memref.cc.o.d"
  "fig1b_memref"
  "fig1b_memref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_memref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
