# Empty dependencies file for advisory_vs_ccache.
# This may be replaced when dependencies are built.
