file(REMOVE_RECURSE
  "CMakeFiles/advisory_vs_ccache.dir/advisory_vs_ccache.cc.o"
  "CMakeFiles/advisory_vs_ccache.dir/advisory_vs_ccache.cc.o.d"
  "advisory_vs_ccache"
  "advisory_vs_ccache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisory_vs_ccache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
