# Empty dependencies file for fig3_thrashing.
# This may be replaced when dependencies are built.
