file(REMOVE_RECURSE
  "CMakeFiles/fig3_thrashing.dir/fig3_thrashing.cc.o"
  "CMakeFiles/fig3_thrashing.dir/fig3_thrashing.cc.o.d"
  "fig3_thrashing"
  "fig3_thrashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_thrashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
