file(REMOVE_RECURSE
  "CMakeFiles/mobile_paging.dir/mobile_paging.cpp.o"
  "CMakeFiles/mobile_paging.dir/mobile_paging.cpp.o.d"
  "mobile_paging"
  "mobile_paging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_paging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
