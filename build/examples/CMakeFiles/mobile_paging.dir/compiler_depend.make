# Empty compiler generated dependencies file for mobile_paging.
# This may be replaced when dependencies are built.
