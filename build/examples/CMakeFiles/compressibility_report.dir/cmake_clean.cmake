file(REMOVE_RECURSE
  "CMakeFiles/compressibility_report.dir/compressibility_report.cpp.o"
  "CMakeFiles/compressibility_report.dir/compressibility_report.cpp.o.d"
  "compressibility_report"
  "compressibility_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressibility_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
