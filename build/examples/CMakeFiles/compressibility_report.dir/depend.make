# Empty dependencies file for compressibility_report.
# This may be replaced when dependencies are built.
