#include "sweep_runner.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace compcache {

unsigned SweepThreadsFromArgs(int argc, char** argv) {
  constexpr const char kFlag[] = "--threads=";
  constexpr size_t kFlagLen = sizeof(kFlag) - 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      return static_cast<unsigned>(std::strtoul(argv[i] + kFlagLen, nullptr, 10));
    }
  }
  if (const char* env = std::getenv("CC_SWEEP_THREADS")) {
    return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

void RunIndexed(size_t count, unsigned threads, const std::function<void(size_t)>& fn) {
  if (count == 0) {
    return;
  }
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  if (threads > count) {
    threads = static_cast<unsigned>(count);
  }
  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<size_t> next{0};
  const auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
}

}  // namespace compcache
