// Machine-readable bench output. Every bench binary keeps its human-readable
// stdout; passing --json=<path> additionally writes one JSON document:
//
//   {
//     "bench": "fig3_thrashing",
//     "schema_version": 1,
//     "config":  { ... },     // fixed parameters of this run
//     "results": [ ... ],     // one object per data point / table row
//     "metrics": { ... }      // flat name -> number, from MetricRegistry
//   }
//
// The schema is validated in CI by bench/check_bench_json.py and documented in
// DESIGN.md. Key order inside "config" and each result row follows insertion
// order so diffs between runs stay readable.
#ifndef COMPCACHE_BENCH_BENCH_JSON_H_
#define COMPCACHE_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace compcache {

class BenchReport {
 public:
  // Scans argv for --json=<path>; without it the report is disabled and all
  // recording calls are cheap no-ops that still accept data.
  BenchReport(std::string bench_name, int argc, char** argv);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  // One row of "results": typed key/value pairs in insertion order.
  class Row {
   public:
    Row& Set(std::string key, double value);
    Row& Set(std::string key, uint64_t value) {
      return Set(std::move(key), static_cast<double>(value));
    }
    Row& Set(std::string key, int value) {
      return Set(std::move(key), static_cast<double>(value));
    }
    Row& Set(std::string key, std::string value);

   private:
    friend class BenchReport;
    struct Field {
      std::string key;
      bool is_string = false;
      std::string str;
      double num = 0;
    };
    std::vector<Field> fields_;
  };

  void Config(std::string key, double value);
  void Config(std::string key, uint64_t value);
  void Config(std::string key, std::string value);
  void Config(std::string key, bool value);

  // Returns a row to fill in; it is kept alive inside the report.
  Row& AddRow();

  // Folds a registry snapshot into "metrics", each name prefixed with `prefix`
  // (use a prefix when one bench runs several machines).
  void MergeMetrics(const MetricRegistry& registry, const std::string& prefix = "");
  // Same, from an already-taken MetricRegistry::Snapshot() — for sweep jobs
  // whose Machine is gone by the time the report is assembled.
  void MergeMetrics(const std::vector<std::pair<std::string, double>>& snapshot,
                    const std::string& prefix = "");

  std::string ToJson() const;

  // Writes ToJson() to the --json path. No-op (returns true) when disabled;
  // returns false and prints to stderr on I/O failure.
  bool WriteIfEnabled() const;

 private:
  struct ConfigEntry {
    std::string key;
    enum class Kind { kNumber, kString, kBool } kind = Kind::kNumber;
    std::string str;
    double num = 0;
    bool boolean = false;
  };

  std::string name_;
  std::string path_;
  std::vector<ConfigEntry> config_;
  std::deque<Row> rows_;  // deque: AddRow() references must stay stable
  std::map<std::string, double> metrics_;
};

}  // namespace compcache

#endif  // COMPCACHE_BENCH_BENCH_JSON_H_
