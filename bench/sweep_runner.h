// Parallel sweep execution for the bench suite.
//
// The ablation and figure benches all have the same shape: a list of
// independent simulated machines (one per sweep point), each fully
// self-contained — its own Machine, clock, disk image, RNG state — followed by
// a report built from the per-point results. The simulation itself is
// deterministic, so the only requirement for parallel execution is that no two
// points share mutable state (they don't; verified: src/ has no mutable
// globals) and that output is assembled in sweep order, not completion order.
//
// RunSweep() fans the points across a thread pool and hands back results
// indexed by sweep point, so a bench that formats its table *after* the sweep
// produces byte-identical stdout and JSON whether it ran on 1 thread or 16.
#ifndef COMPCACHE_BENCH_SWEEP_RUNNER_H_
#define COMPCACHE_BENCH_SWEEP_RUNNER_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace compcache {

// Worker-thread count for a sweep: --threads=N beats CC_SWEEP_THREADS beats
// one-per-core (0 also means one-per-core, so "--threads=0" restores auto).
unsigned SweepThreadsFromArgs(int argc, char** argv);

// Runs fn(0), fn(1), ... fn(count-1), each exactly once, across `threads`
// workers (0 = one per core). With threads <= 1 the calls run inline on the
// calling thread in index order. Dispatch is an atomic counter, so workers
// stay busy even when point costs are skewed. Blocks until every call returns.
void RunIndexed(size_t count, unsigned threads, const std::function<void(size_t)>& fn);

// Runs every job and returns their results in job order. Each job must be
// self-contained: build its own Machine and touch nothing shared. Jobs must
// not print — return what to print and let the caller format it in order.
template <typename R>
std::vector<R> RunSweep(const std::vector<std::function<R()>>& jobs, unsigned threads) {
  std::vector<R> results(jobs.size());
  RunIndexed(jobs.size(), threads, [&](size_t i) { results[i] = jobs[i](); });
  return results;
}

}  // namespace compcache

#endif  // COMPCACHE_BENCH_SWEEP_RUNNER_H_
