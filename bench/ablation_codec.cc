// Ablation: the compression algorithm (paper section 3: "it should allow
// different compression algorithms to be used for different types of data, in
// order to get the best compression rates and/or throughput").
//
// Two measurements per codec, covering every registered codec plus the
// adaptive per-page picker:
//
//   1. Host microbench: real (std::chrono) compress/decompress throughput and
//      the compression ratio over a fixed mixed corpus (sparse numeric, text,
//      pointer-array pages). These are the numbers the README codec table
//      quotes and the numbers that back the cost model's bandwidth parameters.
//   2. Simulated thrash sweep: the same 2x-memory thrashing workload run with
//      each codec over the three content classes, reporting *virtual* elapsed
//      time — where the byte-oriented LZRW1 fails the 4:3 threshold on
//      pointer arrays but the word-oriented WK keeps the pages in memory, and
//      FPC's small-integer classes crush the sparse numeric pages.
//
// --json=<path> writes one row per codec with ratio_pct, compress_mbps,
// decompress_mbps, and the three simulated cell times; the adaptive row also
// carries the probe's pick counts. bench/check_bench_json.py enforces the
// per-codec field set. --quick halves the work for smoke runs.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "compress/adaptive.h"
#include "compress/pagegen.h"
#include "compress/registry.h"
#include "core/machine.h"
#include "sweep_runner.h"
#include "util/rng.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;
constexpr size_t kPagesPerClass = 32;

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

struct ContentSpec {
  ContentClass cls;
  const char* name;  // row/metric suffix: lower_snake
  const char* label; // table header
};

constexpr ContentSpec kContents[] = {
    {ContentClass::kSparseNumeric, "sparse", "sparse numeric"},
    {ContentClass::kText, "text", "text"},
    {ContentClass::kPointerArray, "pointer", "pointer array"},
};
constexpr size_t kNumContents = std::size(kContents);

// The mixed corpus: kPagesPerClass pages per content class, deterministic.
std::vector<uint8_t> MakeCorpus() {
  std::vector<uint8_t> corpus(kNumContents * kPagesPerClass * kPageSize);
  for (size_t c = 0; c < kNumContents; ++c) {
    Rng rng(1000 + c);
    for (size_t p = 0; p < kPagesPerClass; ++p) {
      const size_t page = c * kPagesPerClass + p;
      FillPage(std::span<uint8_t>(corpus.data() + page * kPageSize, kPageSize),
               kContents[c].cls, rng);
    }
  }
  return corpus;
}

struct HostResult {
  double ratio_pct = 0;  // compressed/original over the whole mixed corpus
  std::array<double, kNumContents> ratio_by_class{};
  double compress_mbps = 0;
  double decompress_mbps = 0;
};

// Host throughput and ratio of one codec over the mixed corpus. The first
// full pass doubles as warm-up (scratch growth off the clock) and records the
// per-page compressed images the decompress timing replays.
HostResult MeasureHost(Codec& codec, const std::vector<uint8_t>& corpus, int reps) {
  const size_t pages = corpus.size() / kPageSize;
  HostResult r;

  std::vector<std::vector<uint8_t>> images(pages);
  std::array<uint64_t, kNumContents> class_out{};
  uint64_t total_out = 0;
  for (size_t p = 0; p < pages; ++p) {
    images[p].resize(codec.MaxCompressedSize(kPageSize));
    const auto src = std::span<const uint8_t>(corpus.data() + p * kPageSize, kPageSize);
    const size_t c = codec.Compress(src, images[p]);
    images[p].resize(c);
    class_out[p / kPagesPerClass] += c;
    total_out += c;
  }
  r.ratio_pct = 100.0 * static_cast<double>(total_out) /
                static_cast<double>(pages * kPageSize);
  for (size_t c = 0; c < kNumContents; ++c) {
    r.ratio_by_class[c] = 100.0 * static_cast<double>(class_out[c]) /
                          static_cast<double>(kPagesPerClass * kPageSize);
  }

  std::vector<uint8_t> out(codec.MaxCompressedSize(kPageSize));
  uint64_t sink = 0;  // keeps the timed loops observable
  const WallClock::time_point cstart = WallClock::now();
  for (int i = 0; i < reps; ++i) {
    for (size_t p = 0; p < pages; ++p) {
      const auto src = std::span<const uint8_t>(corpus.data() + p * kPageSize, kPageSize);
      sink += codec.Compress(src, out);
    }
  }
  const double csecs = SecondsSince(cstart);
  r.compress_mbps = static_cast<double>(reps) * static_cast<double>(pages * kPageSize) /
                    (1024.0 * 1024.0) / csecs;

  std::vector<uint8_t> page(kPageSize);
  const WallClock::time_point dstart = WallClock::now();
  for (int i = 0; i < reps; ++i) {
    for (size_t p = 0; p < pages; ++p) {
      codec.Decompress(images[p], page);
      sink += page[0];
    }
  }
  const double dsecs = SecondsSince(dstart);
  r.decompress_mbps = static_cast<double>(reps) * static_cast<double>(pages * kPageSize) /
                      (1024.0 * 1024.0) / dsecs;

  if (sink == 0) std::printf("(unreachable sink)\n");
  return r;
}

// One simulated thrashing machine: 4 MB of memory, 8 MB rw working set.
SimDuration RunSim(const std::string& codec, ContentClass content, int passes) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.codec = codec;
  Machine machine(config);
  ThrasherOptions options;
  options.address_space_bytes = 2 * kUserMemory;
  options.write = true;
  options.passes = passes;
  options.content = content;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int host_reps = quick ? 2 : 8;
  const int sim_passes = quick ? 1 : 2;

  BenchReport report("ablation_codec", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("corpus_pages_per_class", static_cast<uint64_t>(kPagesPerClass));
  report.Config("host_reps", static_cast<uint64_t>(host_reps));
  report.Config("sim_passes", static_cast<uint64_t>(sim_passes));
  report.Config("quick", quick);

  const std::vector<std::string> codecs = KnownCodecNames();
  const std::vector<uint8_t> corpus = MakeCorpus();

  // --- host microbench: ratio + real compress/decompress throughput ---
  std::printf("Codec suite: ratio and host throughput (%zu-page mixed corpus)\n\n",
              corpus.size() / kPageSize);
  std::printf("%-10s %9s %9s %9s %9s %12s %12s\n", "codec", "ratio%", "sparse%",
              "text%", "ptr%", "comp MB/s", "decomp MB/s");
  std::vector<HostResult> host(codecs.size());
  AdaptiveCodec adaptive;  // held here so the probe's pick counts survive
  for (size_t i = 0; i < codecs.size(); ++i) {
    if (codecs[i] == "adaptive") {
      host[i] = MeasureHost(adaptive, corpus, host_reps);
    } else {
      auto codec = MakeCodec(codecs[i]);
      host[i] = MeasureHost(*codec, corpus, host_reps);
    }
    const HostResult& h = host[i];
    std::printf("%-10s %9.1f %9.1f %9.1f %9.1f %12.1f %12.1f\n", codecs[i].c_str(),
                h.ratio_pct, h.ratio_by_class[0], h.ratio_by_class[1],
                h.ratio_by_class[2], h.compress_mbps, h.decompress_mbps);
  }
  std::printf("\nadaptive picks:");
  for (size_t k = 0; k < AdaptiveCodec::kNumPicks; ++k) {
    std::printf(" %s=%llu", AdaptiveCodec::PickName(static_cast<AdaptiveCodec::Pick>(k)),
                static_cast<unsigned long long>(adaptive.pick_counts()[k]));
  }
  std::printf("\n\n");

  // --- simulated thrash sweep: one independent machine per (codec, content)
  // cell, fanned across the pool; the table prints afterwards, in cell order.
  std::printf("Simulated thrashing (4 MB machine, 8 MB rw working set, %d pass%s)\n\n",
              sim_passes, sim_passes == 1 ? "" : "es");
  std::vector<std::function<SimDuration()>> jobs;
  for (const std::string& codec : codecs) {
    for (const ContentSpec& cell : kContents) {
      jobs.push_back(
          [&codec, content = cell.cls, sim_passes] { return RunSim(codec, content, sim_passes); });
    }
  }
  const std::vector<SimDuration> cells = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::printf("%-10s", "codec");
  for (const ContentSpec& c : kContents) {
    std::printf(" %16s", c.label);
  }
  std::printf("\n");
  size_t cell = 0;
  for (const std::string& codec : codecs) {
    std::printf("%-10s", codec.c_str());
    for (size_t c = 0; c < kNumContents; ++c) {
      std::printf(" %16s", cells[cell++].ToMinSec().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nNo single codec dominates: WK keeps the pointer-array pages LZRW1 rejects;\n"
      "FPC wins on small-integer data; LZRW1 wins on text; BDI and dict need\n"
      "low-cardinality 64-bit/word content (see the codec edge-content tests); the\n"
      "adaptive picker tracks the best of its members per content class.\n");

  // --- JSON: one row per codec; adaptive carries its pick counts ---
  for (size_t i = 0; i < codecs.size(); ++i) {
    const HostResult& h = host[i];
    BenchReport::Row& row = report.AddRow();
    row.Set("codec", codecs[i])
        .Set("ratio_pct", h.ratio_pct)
        .Set("compress_mbps", h.compress_mbps)
        .Set("decompress_mbps", h.decompress_mbps);
    for (size_t c = 0; c < kNumContents; ++c) {
      row.Set(std::string("ratio_") + kContents[c].name + "_pct", h.ratio_by_class[c]);
    }
    for (size_t c = 0; c < kNumContents; ++c) {
      row.Set(std::string("sim_") + kContents[c].name + "_ns",
              static_cast<uint64_t>(cells[i * kNumContents + c].nanos()));
    }
    if (codecs[i] == "adaptive") {
      for (size_t k = 0; k < AdaptiveCodec::kNumPicks; ++k) {
        row.Set(std::string("pick_") +
                    AdaptiveCodec::PickName(static_cast<AdaptiveCodec::Pick>(k)),
                adaptive.pick_counts()[k]);
      }
    }
    report.MergeMetrics(
        {{"wall_clock.compress_mbps." + codecs[i], host[i].compress_mbps},
         {"wall_clock.decompress_mbps." + codecs[i], host[i].decompress_mbps}});
  }

  // A representative machine run with the adaptive codec and superblock frame
  // packing on, so the JSON snapshot carries the ccache.superblock.* counters
  // (and the auditor's clean bill) alongside the throughput numbers.
  MachineConfig rep_config = MachineConfig::WithCompressionCache(kUserMemory);
  rep_config.codec = "adaptive";
  rep_config.superblock_packing = true;
  Machine rep(rep_config);
  ThrasherOptions rep_options;
  rep_options.address_space_bytes = 2 * kUserMemory;
  rep_options.write = true;
  rep_options.passes = 1;
  rep_options.content = ContentClass::kText;
  Thrasher rep_app(rep_options);
  rep_app.Run(rep);
  report.MergeMetrics(rep.metrics());

  return report.WriteIfEnabled() ? 0 : 1;
}
