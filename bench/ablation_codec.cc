// Ablation: the compression algorithm (paper section 3: "it should allow
// different compression algorithms to be used for different types of data, in
// order to get the best compression rates and/or throughput").
//
// The same 2x-memory thrashing workload is run with each codec over three data
// types: numeric/sparse pages (everything compresses), text pages, and
// pointer-array pages — where the byte-oriented LZRW1 fails the 4:3 threshold but
// the word-oriented WK codec keeps the pages in memory.
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/thrasher.h"
#include "compress/registry.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

SimDuration Run(const std::string& codec, ContentClass content) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.codec = codec;
  Machine machine(config);
  ThrasherOptions options;
  options.address_space_bytes = 2 * kUserMemory;
  options.write = true;
  options.passes = 2;
  options.content = content;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: codec choice (4 MB machine, 8 MB rw working set)\n\n");
  const std::pair<ContentClass, const char*> contents[] = {
      {ContentClass::kSparseNumeric, "sparse numeric"},
      {ContentClass::kText, "text"},
      {ContentClass::kPointerArray, "pointer array"},
  };
  const char* codecs[] = {"lzrw1", "lzrw1a", "wk", "rle"};

  // One independent machine per (codec, content) cell, fanned across the pool;
  // the table prints from the results afterwards, in cell order.
  std::vector<std::function<SimDuration()>> jobs;
  for (const char* codec : codecs) {
    for (const auto& cell : contents) {
      jobs.push_back([codec, content = cell.first] { return Run(codec, content); });
    }
  }
  const std::vector<SimDuration> cells = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::printf("%-16s", "codec");
  for (const auto& [content, name] : contents) {
    std::printf(" %16s", name);
  }
  std::printf("\n");
  size_t cell = 0;
  for (const char* codec : codecs) {
    std::printf("%-16s", codec);
    for (size_t c = 0; c < std::size(contents); ++c) {
      std::printf(" %16s", cells[cell++].ToMinSec().c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nNo single codec dominates: WK wins on pointer-heavy pages where LZRW1\n"
      "rejects everything; LZRW1 wins on text; RLE only handles runs.\n");
  return 0;
}
