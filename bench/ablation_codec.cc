// Ablation: the compression algorithm (paper section 3: "it should allow
// different compression algorithms to be used for different types of data, in
// order to get the best compression rates and/or throughput").
//
// The same 2x-memory thrashing workload is run with each codec over three data
// types: numeric/sparse pages (everything compresses), text pages, and
// pointer-array pages — where the byte-oriented LZRW1 fails the 4:3 threshold but
// the word-oriented WK codec keeps the pages in memory.
#include <cstdio>

#include "apps/thrasher.h"
#include "compress/registry.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

SimDuration Run(const std::string& codec, ContentClass content) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.codec = codec;
  Machine machine(config);
  ThrasherOptions options;
  options.address_space_bytes = 2 * kUserMemory;
  options.write = true;
  options.passes = 2;
  options.content = content;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

}  // namespace

int main() {
  std::printf("Ablation: codec choice (4 MB machine, 8 MB rw working set)\n\n");
  const std::pair<ContentClass, const char*> contents[] = {
      {ContentClass::kSparseNumeric, "sparse numeric"},
      {ContentClass::kText, "text"},
      {ContentClass::kPointerArray, "pointer array"},
  };
  std::printf("%-16s", "codec");
  for (const auto& [content, name] : contents) {
    std::printf(" %16s", name);
  }
  std::printf("\n");
  for (const auto& codec : {"lzrw1", "lzrw1a", "wk", "rle"}) {
    std::printf("%-16s", codec);
    for (const auto& [content, name] : contents) {
      std::printf(" %16s", Run(codec, content).ToMinSec().c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nNo single codec dominates: WK wins on pointer-heavy pages where LZRW1\n"
      "rejects everything; LZRW1 wins on text; RLE only handles runs.\n");
  return 0;
}
