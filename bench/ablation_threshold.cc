// Ablation: the keep-compressed threshold (paper sections 5.2 and 6).
//
// The paper keeps pages compressed only when they beat 4:3, and concludes "It
// should be possible to disable compression completely when poor compression is
// obtained." This benchmark sweeps the threshold on two workloads from opposite
// ends of the compressibility spectrum:
//   * a compressible thrasher (the threshold barely matters — everything passes);
//   * an incompressible thrasher (sort-random-like), where a permissive threshold
//     keeps useless 90+% "compressed" pages in memory and a strict threshold
//     degenerates gracefully toward the unmodified system.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

SimDuration RunOne(ContentClass content, bool use_ccache, CompressionThreshold threshold,
                   BackingKind backing) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  config.threshold = threshold;
  config.backing = backing;
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = 7 * kMiB;
  options.write = true;
  options.passes = 2;
  options.content = content;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

struct Point {
  const char* name;
  CompressionThreshold threshold;
};

constexpr Point kPoints[] = {
    {"1:1 (keep all)", CompressionThreshold(1, 1)},
    {"4:3 (paper)", CompressionThreshold(4, 3)},
    {"2:1", CompressionThreshold(2, 1)},
    {"4:1", CompressionThreshold(4, 1)},
    {"16:1 (~disable)", CompressionThreshold(16, 1)},
};
constexpr size_t kPointCount = sizeof(kPoints) / sizeof(kPoints[0]);

// Appends this sweep's jobs (one std baseline, then the threshold points) to
// the shared job list; all three sweeps run in one fan-out.
void AddJobs(std::vector<std::function<SimDuration()>>& jobs, ContentClass content,
             BackingKind backing) {
  jobs.push_back(
      [content, backing] { return RunOne(content, false, CompressionThreshold(4, 3), backing); });
  for (const Point& p : kPoints) {
    jobs.push_back([content, backing, threshold = p.threshold] {
      return RunOne(content, true, threshold, backing);
    });
  }
}

// Formats one sweep's results (the std baseline followed by the points, as
// AddJobs laid them out starting at `base`).
void PrintSweep(BenchReport& report, const char* label, const std::vector<SimDuration>& results,
                size_t base) {
  const SimDuration std_time = results[base];
  std::printf("%s workload, unmodified system: %s (%.1f s)\n", label,
              std_time.ToMinSec().c_str(), std_time.seconds());
  for (size_t i = 0; i < kPointCount; ++i) {
    const Point& p = kPoints[i];
    const SimDuration cc_time = results[base + 1 + i];
    const double speedup =
        static_cast<double>(std_time.nanos()) / static_cast<double>(cc_time.nanos());
    std::printf("  threshold %-16s cc: %8s (%.1f s)  speedup vs std: %5.2f\n", p.name,
                cc_time.ToMinSec().c_str(), cc_time.seconds(), speedup);
    report.AddRow()
        .Set("workload", std::string(label))
        .Set("threshold", std::string(p.name))
        .Set("threshold_ratio", p.threshold.ratio())
        .Set("std_seconds", std_time.seconds())
        .Set("cc_seconds", cc_time.seconds())
        .Set("speedup", speedup);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("ablation_threshold", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("working_set_mb", uint64_t{7});

  std::printf("Ablation: keep-compressed threshold (%llu MB machine, 7 MB working set)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));

  std::vector<std::function<SimDuration()>> jobs;
  AddJobs(jobs, ContentClass::kSparseNumeric, BackingKind::kLocalDisk);
  AddJobs(jobs, ContentClass::kRandom, BackingKind::kLocalDisk);
  AddJobs(jobs, ContentClass::kRandom, BackingKind::kNetworkLink);
  const std::vector<SimDuration> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  constexpr size_t kPerSweep = 1 + kPointCount;
  PrintSweep(report, "compressible (~4:1), local disk", results, 0 * kPerSweep);
  PrintSweep(report, "incompressible, local disk", results, 1 * kPerSweep);
  std::printf(
      "(On the rotational disk the wasted compression effort hides inside the\n"
      " positioning delay -- the CPU compresses while the platter turns -- which\n"
      " is part of why the paper's sort random lost only ~10%%. A latency/bandwidth\n"
      " backing store has no such slack:)\n\n");
  PrintSweep(report, "incompressible, wireless link", results, 2 * kPerSweep);
  return report.WriteIfEnabled() ? 0 : 1;
}
