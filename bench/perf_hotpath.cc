// Real (host) wall-clock throughput of the simulator's hot paths.
//
// Unlike every other bench, which reports *virtual* time from the simulated
// clock, this one times the simulator itself with std::chrono::steady_clock.
// It exists to keep the hot-path optimizations honest: the zero-page fast
// path, the scratch-arena compress/decompress path, and the parallel sweep
// runner all claim real-time wins, and this bench turns each claim into a
// number CI can check (bench/check_bench_json.py requires every wall_clock.*
// metric to be positive and zero_speedup_vs_codec to beat 1).
//
// Reported metrics (all under "metrics" in the JSON report):
//   wall_clock.zero_pages_per_sec    CompressPage on all-zero pages
//   wall_clock.codec_pages_per_sec   CompressPage through the codec (text)
//   wall_clock.zero_speedup_vs_codec ratio of the two
//   wall_clock.faults_per_sec        end-to-end thrashing faults serviced
//   wall_clock.sweep_speedup         parallel sweep vs the same sweep serial
//   wall_clock.sweep_threads         worker count the parallel sweep used
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"
#include "util/rng.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

using WallClock = std::chrono::steady_clock;

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

// Wall-clock rate of CompressPage over `iters` repetitions of one page image.
double CompressRate(Machine& machine, std::span<const uint8_t> page, int iters) {
  CompressionCache* cc = machine.ccache();
  // Warm up so one-time arena growth is not on the clock.
  for (int i = 0; i < 64; ++i) {
    ScratchArena::Scope scope(cc->arena());
    (void)cc->CompressPage(page);
  }
  const WallClock::time_point start = WallClock::now();
  for (int i = 0; i < iters; ++i) {
    ScratchArena::Scope scope(cc->arena());
    (void)cc->CompressPage(page);
  }
  return iters / SecondsSince(start);
}

// One small thrashing machine; the unit of the sweep-speedup measurement.
SimDuration SweepJob() {
  Machine machine(MachineConfig::WithCompressionCache(2 * kMiB));
  ThrasherOptions options;
  options.address_space_bytes = 4 * kMiB;
  options.write = true;
  options.passes = 1;
  options.content = ContentClass::kSparseNumeric;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("perf_hotpath", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);

  std::printf("perf_hotpath: host wall-clock throughput of the simulator hot paths\n\n");

  // --- compress-path throughput: zero fast path vs codec path ---
  Machine machine(MachineConfig::WithCompressionCache(kUserMemory));
  std::vector<uint8_t> zero_page(kPageSize, 0);
  std::vector<uint8_t> text_page(kPageSize);
  Rng rng(7);
  FillPage(text_page, ContentClass::kText, rng);

  constexpr int kZeroIters = 200'000;
  constexpr int kCodecIters = 50'000;
  const double zero_rate = CompressRate(machine, zero_page, kZeroIters);
  const double codec_rate = CompressRate(machine, text_page, kCodecIters);
  const double zero_speedup = zero_rate / codec_rate;
  std::printf("compress throughput (one 4 KB page, %s codec):\n",
              machine.config().codec.c_str());
  std::printf("  zero-page fast path: %12.0f pages/s\n", zero_rate);
  std::printf("  codec path (text):   %12.0f pages/s\n", codec_rate);
  std::printf("  zero-path speedup:   %12.2fx\n\n", zero_speedup);

  // --- end-to-end fault throughput under thrashing ---
  const WallClock::time_point fault_start = WallClock::now();
  Machine thrash_machine(MachineConfig::WithCompressionCache(kUserMemory));
  ThrasherOptions options;
  options.address_space_bytes = 2 * kUserMemory;
  options.write = true;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;
  Thrasher app(options);
  app.Run(thrash_machine);
  const double fault_seconds = SecondsSince(fault_start);
  const uint64_t faults = thrash_machine.pager().stats().faults;
  const double faults_per_sec = static_cast<double>(faults) / fault_seconds;
  std::printf("end-to-end thrashing (8 MB rw working set, 4 MB machine):\n");
  std::printf("  %llu faults in %.2f s host time: %12.0f faults/s\n\n",
              static_cast<unsigned long long>(faults), fault_seconds, faults_per_sec);

  // --- parallel sweep speedup, byte-identical results required ---
  constexpr size_t kSweepJobs = 8;
  const std::vector<std::function<SimDuration()>> jobs(kSweepJobs, SweepJob);
  const WallClock::time_point serial_start = WallClock::now();
  const std::vector<SimDuration> serial = RunSweep(jobs, /*threads=*/1);
  const double serial_seconds = SecondsSince(serial_start);

  unsigned threads = SweepThreadsFromArgs(argc, argv);
  if (threads <= 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  const WallClock::time_point parallel_start = WallClock::now();
  const std::vector<SimDuration> parallel = RunSweep(jobs, threads);
  const double parallel_seconds = SecondsSince(parallel_start);

  bool identical = true;
  for (size_t i = 0; i < kSweepJobs; ++i) {
    identical = identical && serial[i].nanos() == parallel[i].nanos();
  }
  const double sweep_speedup = serial_seconds / parallel_seconds;
  std::printf("sweep runner (%zu thrashing machines, %u threads):\n", kSweepJobs, threads);
  std::printf("  serial:   %.2f s\n  parallel: %.2f s\n  speedup:  %.2fx\n  results: %s\n",
              serial_seconds, parallel_seconds, sweep_speedup,
              identical ? "byte-identical" : "MISMATCH");
  if (!identical) {
    std::fprintf(stderr, "perf_hotpath: parallel sweep results differ from serial\n");
    return 1;
  }

  report.AddRow()
      .Set("zero_pages_per_sec", zero_rate)
      .Set("codec_pages_per_sec", codec_rate)
      .Set("zero_speedup_vs_codec", zero_speedup)
      .Set("faults_per_sec", faults_per_sec)
      .Set("sweep_speedup", sweep_speedup)
      .Set("sweep_threads", static_cast<uint64_t>(threads));
  const std::vector<std::pair<std::string, double>> wall = {
      {"wall_clock.zero_pages_per_sec", zero_rate},
      {"wall_clock.codec_pages_per_sec", codec_rate},
      {"wall_clock.zero_speedup_vs_codec", zero_speedup},
      {"wall_clock.faults_per_sec", faults_per_sec},
      {"wall_clock.sweep_speedup", sweep_speedup},
      {"wall_clock.sweep_threads", static_cast<double>(threads)},
  };
  report.MergeMetrics(wall);
  report.MergeMetrics(thrash_machine.metrics(), "thrash.");
  return report.WriteIfEnabled() ? 0 : 1;
}
