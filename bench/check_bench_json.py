#!/usr/bin/env python3
"""Validate bench --json output against the schema documented in DESIGN.md.

Usage: check_bench_json.py FILE [FILE...]

Exits non-zero (listing every violation) if any file fails. Intended for CI
(the bench-smoke job) and for local use after editing a bench.

Schema (schema_version 1):
  top level: object with exactly the keys
    bench           non-empty string
    schema_version  the integer 1
    config          object; values are string, number, or bool
    results         non-empty array of objects; values are string or number
    metrics         object; values are finite numbers; keys are dotted
                    lower_snake metric names (e.g. "vm.faults")

  Additional semantic rules:
    fault.* / retry.*   injection and retry counters; must be non-negative
                        (present whenever a machine publishes its registry,
                        zero when fault injection is disabled)
    audit.violations    invariant-auditor tally; must be exactly 0 -- any
                        machine that published its registry ran with the
                        auditor attached, so a non-zero count is a real
                        cross-subsystem accounting bug, never noise
    wall_clock.*        real (host) time measurements; must be strictly
                        positive -- a zero throughput means the bench's timed
                        section collapsed (dead-code-eliminated or mis-timed)
    perf_hotpath        must publish the full wall_clock metric set and its
                        zero-page fast path must actually be faster than the
                        codec path (wall_clock.zero_speedup_vs_codec > 1)
    proc.*              per-process attribution counters from the scheduler;
                        when present (unprefixed), each family must sum
                        exactly to the machine total it partitions:
                          sum(proc.<name>.faults)          == vm.faults
                          sum(proc.<name>.compressed_hits) == vm.faults_from_ccache
                          sum(proc.<name>.swap_faults)     == vm.faults_from_swap
    fig5_multiprogramming  must publish mix.* metrics (mix.elapsed_ns,
                        mix.processes, per-process mix.<name>.run_ns/faults)
                        from its representative multiprogrammed cell
    ablation_codec      must report one row per registered codec (store, zero,
                        rle, wk, lzrw1, lzrw1a, bdi, fpc, dict, adaptive) with
                        a positive compression ratio and strictly positive
                        host compress/decompress throughput plus the three
                        simulated thrash cell times; the adaptive row must
                        carry the probe's pick_* counters with a non-zero sum
    pipeline.* / prefetch.*  async-pipeline counters; non-negative, and every
                        issued speculation must be accounted for after the
                        bench drains the pipeline:
                          prefetch.hits + prefetch.misses == prefetch.issued
                          pipeline.batches_completed == pipeline.batches_submitted
                          pipeline.inflight == 0
    ablation_pipeline   must publish the headline thrashing-curve pair with
                        the pipelined machine strictly faster than the
                        synchronous baseline (pipeline.curve.pipelined_ms <
                        pipeline.curve.sync_ms), at least one write-behind
                        batch, and at least one speculative issue
    kv.*                KV service workload counters; must be non-negative,
                        and a snapshot that carries them must conserve
                        requests: kv.gets + kv.sets == kv.requests ==
                        kv.request_ns.count, kv.validation_failures == 0
    swap.clustered.coresidents_dropped  corrupt-coresident discard tally;
                        must be non-negative when present
    tier.*              multi-tier hierarchy counters; non-negative, and any
                        snapshot naming tiers (tier.<name>.level) must
                        conserve flows across every adjacent boundary:
                          tier[i].demotions_out  == tier[i+1].demotions_in
                          tier[i+1].promotions_out == tier[i].promotions_in
                        with nothing crossing the stack's ends (the top tier
                        receives no demotions, the bottom emits none)
    ablation_tier       must publish the crossover frontier with an interior
                        DRAM split strictly beating both degenerate machines
                        (tier.frontier.best_ms < tier.frontier.all_dram_ms
                        and < tier.frontier.all_ssd_ms, 0 < best_split < 1)
    fig6_service        must report every backend x {sync, pipelined} cell
                        with a sane tail (0 < p50 <= p99 <= p999), exact
                        request conservation (gets + sets == requests, all
                        served), positive throughput, zero validation
                        failures; the headline knee pair must show the
                        pipelined machine's p99 no worse than sync
                        (service.pipelined_p99_ns <= service.sync_p99_ns)
"""

import json
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
TOP_KEYS = {"bench", "schema_version", "config", "results", "metrics"}
# Monotonic counter families: a negative value can only be a bug. (tier.*
# includes a few gauges — level, pages, frames — but none may go negative.)
COUNTER_PREFIXES = ("fault.", "retry.", "recovery.", "pipeline.", "prefetch.", "kv.",
                    "tier.")
# Counter gauges that are not part of a whole-family prefix but must still
# never go negative when present.
COUNTER_METRICS = ("swap.clustered.coresidents_dropped", "swap.lfs.coresidents_dropped")
# Every backend x mode cell fig6_service must cover, and the numeric fields
# each of its rows must carry.
FIG6_BACKENDS = ("clustered", "fixed_compressed", "lfs")
FIG6_MODES = ("sync", "pipelined")
FIG6_ROW_FIELDS = (
    "memory_mb", "requests", "gets", "sets", "p50_ns", "p99_ns", "p999_ns",
    "ops_per_sec", "validation_failures",
)
# The full crash-recovery metric set crash_soak must publish (grid totals;
# see bench/crash_soak.cc and RecoveryStats in src/core/machine.h).
CRASH_SOAK_METRICS = (
    "recovery.mounts",
    "recovery.pages_recovered",
    "recovery.pages_lost",
    "recovery.orphans_discarded",
    "recovery.journal_replays",
    "recovery.checkpoint_loads",
    "recovery.torn_writes_detected",
    "recovery.mount_ns",
    "recovery.content_mismatches",
    "audit.violations",
)
# The full codec suite ablation_codec must cover (see src/compress/registry.cc
# KnownCodecNames()) and the fields every per-codec row must carry.
ABLATION_CODEC_NAMES = (
    "adaptive", "bdi", "dict", "fpc", "lzrw1",
    "lzrw1a", "rle", "store", "wk", "zero",
)
ABLATION_CODEC_ROW_FIELDS = (
    "ratio_pct", "compress_mbps", "decompress_mbps",
    "sim_sparse_ns", "sim_text_ns", "sim_pointer_ns",
)
ABLATION_ADAPTIVE_PICKS = (
    "pick_zero", "pick_store", "pick_bdi", "pick_fpc", "pick_dict", "pick_lzrw1",
)
# Wall-clock metrics perf_hotpath must publish (see bench/perf_hotpath.cc).
PERF_HOTPATH_METRICS = (
    "wall_clock.zero_pages_per_sec",
    "wall_clock.codec_pages_per_sec",
    "wall_clock.zero_speedup_vs_codec",
    "wall_clock.faults_per_sec",
    "wall_clock.sweep_speedup",
    "wall_clock.sweep_threads",
)


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_counter_metric(name):
    # Benches may prefix a machine label (e.g. "cc_rw.fault.pages_lost").
    return name.startswith(COUNTER_PREFIXES) or any(
        f".{p}" in name for p in COUNTER_PREFIXES) or any(
        name == m or name.endswith(f".{m}") for m in COUNTER_METRICS)


def validate(path):
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON: {e}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object"]

    missing = TOP_KEYS - doc.keys()
    extra = doc.keys() - TOP_KEYS
    if missing:
        err(f"missing top-level keys: {sorted(missing)}")
    if extra:
        err(f"unexpected top-level keys: {sorted(extra)}")

    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        err('"bench" must be a non-empty string')

    if doc.get("schema_version") != 1 or isinstance(doc.get("schema_version"), bool):
        err(f'"schema_version" must be 1, got {doc.get("schema_version")!r}')

    config = doc.get("config")
    if not isinstance(config, dict):
        err('"config" must be an object')
    else:
        for k, v in config.items():
            if not (isinstance(v, (str, bool)) or is_number(v)):
                err(f'config["{k}"] must be string, number, or bool, got {type(v).__name__}')

    results = doc.get("results")
    if not isinstance(results, list):
        err('"results" must be an array')
    elif not results:
        err('"results" must not be empty')
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                err(f"results[{i}] must be an object")
                continue
            if not row:
                err(f"results[{i}] must not be empty")
            for k, v in row.items():
                if not (isinstance(v, str) or is_number(v)):
                    err(f'results[{i}]["{k}"] must be string or number, '
                        f"got {type(v).__name__}")
                if is_number(v) and not math.isfinite(v):
                    err(f'results[{i}]["{k}"] must be finite, got {v}')

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        err('"metrics" must be an object')
    else:
        for k, v in metrics.items():
            if not METRIC_NAME_RE.match(k):
                err(f'metric name "{k}" is not dotted lower_snake')
            if not is_number(v):
                err(f'metrics["{k}"] must be a number, got {type(v).__name__}')
            elif not math.isfinite(v):
                err(f'metrics["{k}"] must be finite, got {v}')
            elif v < 0 and is_counter_metric(k):
                err(f'metrics["{k}"] is a counter and must be non-negative, got {v}')
            elif k.startswith("wall_clock.") and v <= 0:
                err(f'metrics["{k}"] is a wall-clock measurement and must be '
                    f"positive, got {v}")
            elif (k == "audit.violations" or k.endswith(".audit.violations")) and v != 0:
                err(f'metrics["{k}"] must be 0 -- the invariant auditor found '
                    f"{v} violation(s)")

    # Per-process attribution: when a snapshot carries the scheduler's
    # unprefixed proc.* counters, each family must partition the machine total
    # it attributes -- the scheduler delta-snapshots the authoritative
    # counters around every quantum, so any mismatch is an accounting bug.
    if isinstance(metrics, dict):
        proc_sums = {}
        for k, v in metrics.items():
            m = re.match(r"^proc\.[a-z0-9_]+\.([a-z0-9_]+)$", k)
            if m and is_number(v):
                proc_sums[m.group(1)] = proc_sums.get(m.group(1), 0) + v
        for field, total in (("faults", "vm.faults"),
                             ("compressed_hits", "vm.faults_from_ccache"),
                             ("swap_faults", "vm.faults_from_swap")):
            if field in proc_sums and total in metrics:
                if proc_sums[field] != metrics[total]:
                    err(f"sum(proc.*.{field}) = {proc_sums[field]} but "
                        f'metrics["{total}"] = {metrics[total]} -- per-process '
                        f"attribution must partition the machine total exactly")

    if bench == "crash_soak":
        if isinstance(metrics, dict):
            for name in CRASH_SOAK_METRICS:
                v = metrics.get(name)
                if not is_number(v):
                    err(f'crash_soak must publish numeric metrics["{name}"]')
                elif v < 0:
                    err(f'metrics["{name}"] must be non-negative, got {v}')
            # A soak that never mounted a recovered machine, or whose
            # differential check found divergent bytes, proves nothing.
            if is_number(metrics.get("recovery.mounts")) and metrics["recovery.mounts"] <= 0:
                err("crash_soak recovered no machine -- recovery.mounts must be positive")
            if is_number(metrics.get("recovery.content_mismatches")) and \
                    metrics["recovery.content_mismatches"] != 0:
                err(f'metrics["recovery.content_mismatches"] must be 0 -- recovered '
                    f'pages diverged from every written version')
        if isinstance(results, list):
            for i, row in enumerate(results):
                if not isinstance(row, dict):
                    continue
                if is_number(row.get("violations")) and row["violations"] != 0:
                    err(f"results[{i}] carries {row['violations']} audit violation(s)")
                if is_number(row.get("content_mismatches")) and row["content_mismatches"] != 0:
                    err(f"results[{i}] carries {row['content_mismatches']} content "
                        f"mismatch(es)")

    if bench == "fig5_multiprogramming" and isinstance(metrics, dict):
        if not any(k.startswith("mix.") for k in metrics):
            err("fig5_multiprogramming must publish mix.* metrics from its "
                "representative multiprogrammed cell")
        for name in ("mix.elapsed_ns", "mix.processes"):
            if name not in metrics:
                err(f'fig5_multiprogramming must publish metrics["{name}"]')
        if not any(k.startswith("proc.") for k in metrics):
            err("fig5_multiprogramming snapshot must include per-process "
                "proc.* counters")

    if bench == "ablation_codec" and isinstance(results, list):
        by_codec = {}
        for i, row in enumerate(results):
            if isinstance(row, dict) and isinstance(row.get("codec"), str):
                by_codec[row["codec"]] = (i, row)
        for name in ABLATION_CODEC_NAMES:
            if name not in by_codec:
                err(f'ablation_codec must report a row with codec="{name}"')
                continue
            i, row = by_codec[name]
            for field in ABLATION_CODEC_ROW_FIELDS:
                v = row.get(field)
                if not is_number(v):
                    err(f'results[{i}] (codec={name}) must carry numeric '
                        f'"{field}"')
                elif v <= 0:
                    err(f'results[{i}] (codec={name})["{field}"] must be '
                        f"strictly positive, got {v}")
        if "adaptive" in by_codec:
            i, row = by_codec["adaptive"]
            picks = []
            for field in ABLATION_ADAPTIVE_PICKS:
                v = row.get(field)
                if not is_number(v) or v < 0:
                    err(f'results[{i}] (codec=adaptive) must carry '
                        f'non-negative "{field}"')
                else:
                    picks.append(v)
            if picks and sum(picks) <= 0:
                err("ablation_codec adaptive row pick_* counts must sum to a "
                    "positive value -- the probe never ran")
        if isinstance(metrics, dict):
            for name in ABLATION_CODEC_NAMES:
                for kind in ("compress", "decompress"):
                    key = f"wall_clock.{kind}_mbps.{name}"
                    if key not in metrics:
                        err(f'ablation_codec must publish metrics["{key}"]')

    # Async-pipeline conservation: benches publish these counters only after
    # Machine::DrainPipeline(), so a dangling speculation or in-flight batch
    # is an accounting bug, not a timing window.
    if isinstance(metrics, dict):
        pf = [metrics.get(k) for k in
              ("prefetch.hits", "prefetch.misses", "prefetch.issued")]
        if all(is_number(v) for v in pf) and pf[0] + pf[1] != pf[2]:
            err(f"prefetch.hits + prefetch.misses = {pf[0] + pf[1]} but "
                f"prefetch.issued = {pf[2]} -- every drained speculation must "
                f"be a hit or a miss")
        wb = [metrics.get(k) for k in
              ("pipeline.batches_completed", "pipeline.batches_submitted")]
        if all(is_number(v) for v in wb) and wb[0] != wb[1]:
            err(f"pipeline.batches_completed = {wb[0]} but "
                f"pipeline.batches_submitted = {wb[1]} -- drained write-behind "
                f"must retire every batch")
        inflight = metrics.get("pipeline.inflight")
        if is_number(inflight) and inflight != 0:
            err(f'metrics["pipeline.inflight"] must be 0 after a drain, '
                f"got {inflight}")

    # Multi-tier flow conservation: a snapshot naming tiers carries each
    # tier's flow counters from one machine, so every page that left tier i
    # downward must have arrived at tier i+1 (and vice versa for promotions),
    # and nothing may cross the ends of the stack.
    if isinstance(metrics, dict):
        tiers = []
        for k, v in metrics.items():
            m = re.match(r"^tier\.([a-z0-9_]+)\.level$", k)
            if m and is_number(v):
                tiers.append((v, m.group(1)))
        tiers.sort()
        def tier_counter(name, field):
            return metrics.get(f"tier.{name}.{field}")
        for (lvl_a, a), (lvl_b, b) in zip(tiers, tiers[1:]):
            dout, din = tier_counter(a, "demotions_out"), tier_counter(b, "demotions_in")
            if is_number(dout) and is_number(din) and dout != din:
                err(f"tier boundary {a}/{b}: demotions_out = {dout} but "
                    f"demotions_in = {din} -- a demoted page left one tier "
                    f"without arriving at the next")
            pout, pin = tier_counter(b, "promotions_out"), tier_counter(a, "promotions_in")
            if is_number(pout) and is_number(pin) and pout != pin:
                err(f"tier boundary {a}/{b}: promotions_out = {pout} but "
                    f"promotions_in = {pin} -- a promoted page left one tier "
                    f"without arriving at the one above")
        if tiers:
            top, bottom = tiers[0][1], tiers[-1][1]
            for name, field in ((top, "demotions_in"), (top, "promotions_out"),
                                (bottom, "demotions_out"), (bottom, "promotions_in")):
                v = tier_counter(name, field)
                if is_number(v) and v != 0:
                    err(f'metrics["tier.{name}.{field}"] must be 0 -- flow '
                        f"crossed the end of the tier stack, got {v}")

    # KV service conservation: any snapshot carrying the kv.* family must
    # account every request exactly once in both the counters and the latency
    # histogram, and must have served all of them correctly.
    if isinstance(metrics, dict) and "kv.requests" in metrics:
        kv = [metrics.get(k) for k in ("kv.gets", "kv.sets", "kv.requests")]
        if all(is_number(v) for v in kv) and kv[0] + kv[1] != kv[2]:
            err(f"kv.gets + kv.sets = {kv[0] + kv[1]} but kv.requests = "
                f"{kv[2]} -- every request is exactly one get or one set")
        hist_count = metrics.get("kv.request_ns.count")
        if is_number(hist_count) and hist_count != metrics["kv.requests"]:
            err(f"kv.request_ns.count = {hist_count} but kv.requests = "
                f"{metrics['kv.requests']} -- every request must observe "
                f"exactly one latency sample")
        vf = metrics.get("kv.validation_failures")
        if is_number(vf) and vf != 0:
            err(f'metrics["kv.validation_failures"] must be 0 -- a get '
                f"returned a corrupted or stale object header, got {vf}")

    if bench == "fig6_service":
        if isinstance(results, list):
            cells = set()
            for i, row in enumerate(results):
                if not isinstance(row, dict):
                    continue
                backend, mode = row.get("backend"), row.get("mode")
                if isinstance(backend, str) and isinstance(mode, str):
                    cells.add((backend, mode))
                for field in FIG6_ROW_FIELDS:
                    if not is_number(row.get(field)):
                        err(f'results[{i}] must carry numeric "{field}"')
                tail = [row.get(k) for k in ("p50_ns", "p99_ns", "p999_ns")]
                if all(is_number(v) for v in tail):
                    if tail[0] <= 0:
                        err(f"results[{i}] p50_ns must be positive, got {tail[0]}")
                    if not tail[0] <= tail[1] <= tail[2]:
                        err(f"results[{i}] latency tail must be monotone: "
                            f"p50 {tail[0]} <= p99 {tail[1]} <= p999 {tail[2]}")
                reqs = [row.get(k) for k in ("gets", "sets", "requests")]
                if all(is_number(v) for v in reqs):
                    if reqs[2] <= 0:
                        err(f"results[{i}] served no requests")
                    if reqs[0] + reqs[1] != reqs[2]:
                        err(f"results[{i}] gets + sets = {reqs[0] + reqs[1]} "
                            f"but requests = {reqs[2]}")
                if is_number(row.get("ops_per_sec")) and row["ops_per_sec"] <= 0:
                    err(f"results[{i}] ops_per_sec must be positive, got "
                        f"{row['ops_per_sec']}")
                if is_number(row.get("validation_failures")) and \
                        row["validation_failures"] != 0:
                    err(f"results[{i}] carries {row['validation_failures']} "
                        f"validation failure(s)")
            for backend in FIG6_BACKENDS:
                for mode in FIG6_MODES:
                    if (backend, mode) not in cells:
                        err(f"fig6_service must report a ({backend}, {mode}) "
                            f"cell -- the backend x mode grid is incomplete")
        if isinstance(metrics, dict):
            sync_p99 = metrics.get("service.sync_p99_ns")
            piped_p99 = metrics.get("service.pipelined_p99_ns")
            if not (is_number(sync_p99) and sync_p99 > 0):
                err('fig6_service must publish positive '
                    'metrics["service.sync_p99_ns"]')
            if not (is_number(piped_p99) and piped_p99 > 0):
                err('fig6_service must publish positive '
                    'metrics["service.pipelined_p99_ns"]')
            if is_number(sync_p99) and is_number(piped_p99) and \
                    piped_p99 > sync_p99:
                err(f"fig6_service pipelined p99 must be no worse than sync "
                    f"at the headline memory pressure, got {piped_p99} > "
                    f"{sync_p99}")
            if "kv.requests" not in metrics:
                err("fig6_service snapshot must include the kv.* service "
                    "counters from its headline cell")

    if bench == "ablation_pipeline" and isinstance(metrics, dict):
        sync_ms = metrics.get("pipeline.curve.sync_ms")
        piped_ms = metrics.get("pipeline.curve.pipelined_ms")
        if not (is_number(sync_ms) and sync_ms > 0):
            err('ablation_pipeline must publish positive '
                'metrics["pipeline.curve.sync_ms"]')
        if not (is_number(piped_ms) and piped_ms > 0):
            err('ablation_pipeline must publish positive '
                'metrics["pipeline.curve.pipelined_ms"]')
        if is_number(sync_ms) and is_number(piped_ms) and piped_ms >= sync_ms:
            err(f"ablation_pipeline pipelined machine must beat the "
                f"synchronous baseline on the headline curve cell, got "
                f"{piped_ms} >= {sync_ms}")
        for name in ("pipeline.batches_submitted", "prefetch.issued"):
            v = metrics.get(name)
            if not (is_number(v) and v >= 1):
                err(f'ablation_pipeline must publish metrics["{name}"] >= 1 '
                    f"-- the pipeline never engaged")

    if bench == "ablation_tier" and isinstance(metrics, dict):
        frontier = {}
        for field in ("best_ms", "all_dram_ms", "all_ssd_ms", "best_split"):
            v = metrics.get(f"tier.frontier.{field}")
            if not (is_number(v) and v > 0):
                err(f'ablation_tier must publish positive '
                    f'metrics["tier.frontier.{field}"]')
            else:
                frontier[field] = v
        if "best_split" in frontier and not 0 < frontier["best_split"] < 1:
            err(f"ablation_tier best_split must be an interior DRAM share in "
                f"(0, 1), got {frontier['best_split']}")
        if {"best_ms", "all_dram_ms", "all_ssd_ms"} <= frontier.keys():
            if frontier["best_ms"] >= frontier["all_dram_ms"]:
                err(f"ablation_tier interior split must beat the all-DRAM "
                    f"machine, got {frontier['best_ms']} >= "
                    f"{frontier['all_dram_ms']}")
            if frontier["best_ms"] >= frontier["all_ssd_ms"]:
                err(f"ablation_tier interior split must beat the all-SSD "
                    f"machine, got {frontier['best_ms']} >= "
                    f"{frontier['all_ssd_ms']}")
        if not any(re.match(r"^tier\.[a-z0-9_]+\.level$", k) for k in metrics):
            err("ablation_tier snapshot must include the tier.* metric "
                "families from its representative tiered cell")

    if bench == "perf_hotpath" and isinstance(metrics, dict):
        for name in PERF_HOTPATH_METRICS:
            if name not in metrics:
                err(f'perf_hotpath must publish metrics["{name}"]')
        speedup = metrics.get("wall_clock.zero_speedup_vs_codec")
        if is_number(speedup) and speedup <= 1:
            err(f"perf_hotpath zero-page fast path must beat the codec path, "
                f"got speedup {speedup}")

    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    all_errors = []
    for path in argv[1:]:
        errs = validate(path)
        if errs:
            all_errors.extend(errs)
        else:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            print(f"OK {path}: bench={doc['bench']} "
                  f"results={len(doc['results'])} metrics={len(doc['metrics'])}")
    for e in all_errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
