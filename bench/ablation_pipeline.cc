// Ablation: async pipelined I/O (write-behind + decompress-ahead + batched
// fault reads) against the synchronous machine, on the paper's thrashing
// workload (6 MB user memory, RZ57-class disk, ~4:1-compressible pages).
//
// Two axes:
//   curve  fig3-style size sweep on the clustered backend, sync vs pipelined
//          (write-behind depth 4, prefetch on): shows the thrashing curve
//          shifting down when batch disk time overlaps app CPU and
//          stride-predicted pages are decompressed ahead of the fault.
//   grid   at one memory-pressured size, backend x write-behind depth x
//          prefetch: where the win comes from per configuration. Depth 1 with
//          prefetch off is the degenerate pipeline, which the differential
//          test pins byte-identical to sync — its row should match the sync
//          baseline exactly.
//
// Headline metrics (validated by bench/check_bench_json.py): the matched
// most-pressured curve cells, pipeline.curve.sync_ms vs
// pipeline.curve.pipelined_ms, with pipelined strictly faster.
//
//   --quick   one curve size and a clustered-only grid, for CI smoke runs
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;

struct RunResult {
  double avg_access_ms = 0.0;
  uint64_t batches_submitted = 0;
  uint64_t barrier_stalls = 0;
  uint64_t backpressure_stalls = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t batched_reads = 0;
  // Full metric snapshot, taken for one representative run only (the machine
  // is gone by the time the report is assembled).
  std::vector<std::pair<std::string, double>> metrics;
};

PipelineOptions Piped(uint32_t depth, bool prefetch) {
  PipelineOptions p;
  p.enabled = true;
  p.write_behind_depth = depth;
  p.prefetch = prefetch;
  p.prefetch_buffer_pages = 8;
  p.prefetch_per_fault = 2;
  p.fault_batch_window = 2;
  return p;
}

RunResult RunOne(uint64_t address_space, CompressedSwapKind kind,
                 const PipelineOptions& pipeline, bool snapshot_metrics) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.compressed_swap = kind;
  config.pipeline = pipeline;
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = true;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1, like the paper
  Thrasher app(options);
  app.Run(machine);
  // Quiesce before reading stats: misses flushed, in-flight batches retired,
  // so the prefetch conservation equation closes in the snapshot.
  machine.DrainPipeline();

  RunResult result;
  result.avg_access_ms = app.result().AvgAccessMillis();
  if (machine.write_behind() != nullptr) {
    const auto& ws = machine.write_behind()->stats();
    result.batches_submitted = ws.batches_submitted;
    result.barrier_stalls = ws.barrier_stalls;
    result.backpressure_stalls = ws.backpressure_stalls;
  }
  if (machine.pipeline() != nullptr) {
    const auto& ps = machine.pipeline()->stats();
    result.prefetch_issued = ps.issued;
    result.prefetch_hits = ps.hits;
    result.batched_reads = ps.batched;
  }
  if (snapshot_metrics) {
    result.metrics = machine.metrics().Snapshot();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  const std::vector<uint64_t> curve_sizes_mb =
      quick ? std::vector<uint64_t>{12} : std::vector<uint64_t>{8, 12, 16, 20};
  const uint64_t grid_size_mb = quick ? 12 : 16;
  const std::vector<std::pair<std::string, CompressedSwapKind>> grid_backends =
      quick ? std::vector<std::pair<std::string, CompressedSwapKind>>{
                  {"clustered", CompressedSwapKind::kClustered}}
            : std::vector<std::pair<std::string, CompressedSwapKind>>{
                  {"clustered", CompressedSwapKind::kClustered},
                  {"fixed_compressed", CompressedSwapKind::kFixedOffset},
                  {"lfs", CompressedSwapKind::kLfs}};
  const std::vector<uint32_t> grid_depths =
      quick ? std::vector<uint32_t>{4} : std::vector<uint32_t>{1, 4, 8};

  BenchReport report("ablation_pipeline", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("content", std::string("sparse_numeric"));
  report.Config("passes", uint64_t{2});
  report.Config("grid_size_mb", grid_size_mb);
  report.Config("quick", quick);

  std::printf("pipeline ablation: thrasher on a %llu MB machine "
              "(RZ57-class disk, LZRW1, 4 KB pages)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));

  // Fan every machine across the pool; tables are formatted afterwards in
  // sweep order so stdout and JSON match a single-threaded run byte-for-byte.
  std::vector<std::function<RunResult()>> jobs;
  const PipelineOptions sync;  // pipeline disabled
  const PipelineOptions pipelined = Piped(/*depth=*/4, /*prefetch=*/true);
  for (const uint64_t mb : curve_sizes_mb) {
    const uint64_t bytes = mb * kMiB;
    // The last (most pressured) size's pipelined cell contributes the full
    // metric snapshot, so pipeline.* / prefetch.* land in the report.
    const bool snapshot = mb == curve_sizes_mb.back() && report.enabled();
    jobs.push_back([bytes, sync] {
      return RunOne(bytes, CompressedSwapKind::kClustered, sync, false);
    });
    jobs.push_back([bytes, pipelined, snapshot] {
      return RunOne(bytes, CompressedSwapKind::kClustered, pipelined, snapshot);
    });
  }
  const uint64_t grid_bytes = grid_size_mb * kMiB;
  for (const auto& [bname, kind] : grid_backends) {
    const auto k = kind;
    jobs.push_back([grid_bytes, k, sync] { return RunOne(grid_bytes, k, sync, false); });
    for (const uint32_t depth : grid_depths) {
      for (const bool prefetch : {false, true}) {
        jobs.push_back([grid_bytes, k, depth, prefetch] {
          return RunOne(grid_bytes, k, Piped(depth, prefetch), false);
        });
      }
    }
  }
  const std::vector<RunResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::printf("curve: clustered backend, sync vs pipelined (depth 4, prefetch on)\n");
  std::printf("%8s %10s %14s %8s %9s %8s %8s\n", "size(MB)", "sync_ms", "pipelined_ms",
              "speedup", "batches", "pf_hits", "batched");
  std::string csv = "axis,size_mb,backend,depth,prefetch,avg_access_ms\n";
  double curve_sync_ms = 0.0;
  double curve_pipelined_ms = 0.0;
  size_t job = 0;
  for (const uint64_t mb : curve_sizes_mb) {
    const RunResult& s = results[job++];
    const RunResult& p = results[job++];
    if (!p.metrics.empty()) {
      report.MergeMetrics(p.metrics);
    }
    if (mb == curve_sizes_mb.back()) {
      curve_sync_ms = s.avg_access_ms;
      curve_pipelined_ms = p.avg_access_ms;
    }
    std::printf("%8llu %10.3f %14.3f %8.2f %9llu %8llu %8llu\n",
                static_cast<unsigned long long>(mb), s.avg_access_ms, p.avg_access_ms,
                p.avg_access_ms > 0 ? s.avg_access_ms / p.avg_access_ms : 0.0,
                static_cast<unsigned long long>(p.batches_submitted),
                static_cast<unsigned long long>(p.prefetch_hits),
                static_cast<unsigned long long>(p.batched_reads));
    char line[160];
    std::snprintf(line, sizeof(line), "curve,%llu,clustered,0,0,%.3f\n",
                  static_cast<unsigned long long>(mb), s.avg_access_ms);
    csv += line;
    std::snprintf(line, sizeof(line), "curve,%llu,clustered,4,1,%.3f\n",
                  static_cast<unsigned long long>(mb), p.avg_access_ms);
    csv += line;
    report.AddRow()
        .Set("axis", std::string("curve"))
        .Set("size_mb", mb)
        .Set("sync_ms", s.avg_access_ms)
        .Set("pipelined_ms", p.avg_access_ms)
        .Set("speedup", p.avg_access_ms > 0 ? s.avg_access_ms / p.avg_access_ms : 0.0)
        .Set("batches_submitted", p.batches_submitted)
        .Set("prefetch_hits", p.prefetch_hits)
        .Set("batched_reads", p.batched_reads);
  }

  std::printf("\ngrid: %llu MB working set, backend x depth x prefetch "
              "(depth 0 = pipeline off)\n",
              static_cast<unsigned long long>(grid_size_mb));
  std::printf("%18s %6s %9s %10s %8s %8s %8s %8s %9s\n", "backend", "depth", "prefetch",
              "avg_ms", "speedup", "batches", "barrier", "backpr", "pf_hits");
  for (const auto& [bname, kind] : grid_backends) {
    const RunResult& base = results[job++];
    const auto print_row = [&](uint32_t depth, bool prefetch, const RunResult& r) {
      std::printf("%18s %6u %9s %10.3f %8.2f %8llu %8llu %8llu %9llu\n", bname.c_str(),
                  depth, prefetch ? "on" : "off", r.avg_access_ms,
                  r.avg_access_ms > 0 ? base.avg_access_ms / r.avg_access_ms : 0.0,
                  static_cast<unsigned long long>(r.batches_submitted),
                  static_cast<unsigned long long>(r.barrier_stalls),
                  static_cast<unsigned long long>(r.backpressure_stalls),
                  static_cast<unsigned long long>(r.prefetch_hits));
      char line[160];
      std::snprintf(line, sizeof(line), "grid,%llu,%s,%u,%d,%.3f\n",
                    static_cast<unsigned long long>(grid_size_mb), bname.c_str(), depth,
                    prefetch ? 1 : 0, r.avg_access_ms);
      csv += line;
      report.AddRow()
          .Set("axis", std::string("grid"))
          .Set("backend", bname)
          .Set("depth", static_cast<uint64_t>(depth))
          .Set("prefetch", prefetch ? 1 : 0)
          .Set("avg_ms", r.avg_access_ms)
          .Set("speedup",
               r.avg_access_ms > 0 ? base.avg_access_ms / r.avg_access_ms : 0.0)
          .Set("batches_submitted", r.batches_submitted)
          .Set("barrier_stalls", r.barrier_stalls)
          .Set("backpressure_stalls", r.backpressure_stalls)
          .Set("prefetch_hits", r.prefetch_hits);
    };
    print_row(0, false, base);
    for (const uint32_t depth : grid_depths) {
      for (const bool prefetch : {false, true}) {
        print_row(depth, prefetch, results[job++]);
      }
    }
  }

  // Headline gate for the JSON validator: the matched most-pressured curve
  // cells, pipelined strictly faster than sync.
  report.MergeMetrics({{"pipeline.curve.sync_ms", curve_sync_ms},
                       {"pipeline.curve.pipelined_ms", curve_pipelined_ms}});

  std::printf("\nCSV:\n%s", csv.c_str());
  return report.WriteIfEnabled() ? 0 : 1;
}
