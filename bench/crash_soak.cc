// Crash-recovery soak: sweeps crash density x compressed-swap backend x
// superblock packing. Each cell runs a deterministic eviction-heavy workload,
// crashes it at evenly spaced power-fail sector ordinals (one machine per
// crash point), boots a recovered machine over each surviving image, and
// checks the result three ways: the cross-subsystem invariant audit must be
// clean, every recovered page must read back as bytes the workload actually
// wrote (or zeros with the segment aborted — the lost ladder), and the
// recovery.* accounting must cover every touched page exactly once. Any
// violation or content mismatch fails the process, so CI treats crash-
// consistency drift as a hard error.
//
//   --quick       smaller workload and fewer crash points for CI smoke runs
//   --points=<n>  override the dense grid's crash points per cell
//   --json=<path> machine-readable report (schema in DESIGN.md)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 2 * kMiB;

struct CellResult {
  uint64_t crash_points = 0;
  uint64_t crashes = 0;  // crash points that actually fired (must equal above)
  RecoveryStats totals;  // summed over every recovered machine in the cell
  size_t violations = 0;
  uint64_t content_mismatches = 0;
  std::string first_violation;
  std::vector<std::pair<std::string, double>> metrics;  // representative snapshot
};

// Deterministic, never-all-zero page pattern: compressible first half (so
// pages flow through the compression cache) and random second half (so the
// LFS segment buffer fills and real disk traffic happens).
void FillPattern(std::span<uint8_t> page, uint32_t index, uint32_t version) {
  const size_t half = page.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    page[i] = static_cast<uint8_t>((index * 31 + version * 7 + i / 64) | 1);
  }
  Rng rng(uint64_t{index} * 131 + version);
  for (size_t i = half; i < page.size(); ++i) {
    page[i] = static_cast<uint8_t>(rng.Next());
  }
}

bool MatchesPattern(std::span<const uint8_t> page, uint32_t index, uint32_t version) {
  std::vector<uint8_t> expected(page.size());
  FillPattern(expected, index, version);
  return std::equal(page.begin(), page.end(), expected.begin());
}

bool IsAllZero(std::span<const uint8_t> page) {
  return std::all_of(page.begin(), page.end(), [](uint8_t b) { return b == 0; });
}

MachineConfig MakeConfig(CompressedSwapKind kind, bool superblock) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.compressed_swap = kind;
  config.superblock_packing = superblock;
  config.durability.enabled = true;
  config.durability.lfs_checkpoint_interval = 2;
  config.fault_injection.enabled = true;
  config.fault_injection.seed = 1993;
  return config;
}

// Two write passes over a working set larger than memory; versions[p] records
// the last version whose write completed before the crash (if any).
void Workload(Machine& machine, Segment* segment, uint32_t num_pages,
              std::vector<uint32_t>* versions) {
  for (uint32_t version = 1; version <= 2; ++version) {
    for (uint32_t p = 0; p < num_pages; ++p) {
      auto span = machine.pager().Access(*segment, p, /*write=*/true);
      FillPattern(span, p, version);
      (*versions)[p] = version;
    }
  }
}

CellResult RunCell(CompressedSwapKind kind, bool superblock, uint64_t points,
                   uint32_t num_pages, bool snapshot) {
  CellResult cell;
  cell.crash_points = points;

  // Dry run: expose the cell's power-fail crash points.
  uint64_t total_sectors = 0;
  {
    Machine machine(MakeConfig(kind, superblock));
    Segment* segment = machine.pager().CreateSegment(num_pages);
    std::vector<uint32_t> versions(num_pages, 0);
    Workload(machine, segment, num_pages, &versions);
    total_sectors = machine.fault_injector()->ops(FaultSite::kPowerFail);
  }
  if (total_sectors == 0) {
    cell.first_violation = "workload produced no disk writes";
    ++cell.violations;
    return cell;
  }

  for (uint64_t i = 0; i < points; ++i) {
    const uint64_t crash_sector = total_sectors * (i + 1) / (points + 1) + 1;
    MachineConfig config = MakeConfig(kind, superblock);
    config.fault_injection.power_fail_nth_sectors = {crash_sector};

    Machine machine(config);
    Segment* segment = machine.pager().CreateSegment(num_pages);
    std::vector<uint32_t> versions(num_pages, 0);
    bool crashed = false;
    try {
      Workload(machine, segment, num_pages, &versions);
    } catch (const PowerFailure&) {
      crashed = true;
    }
    if (!crashed) {
      continue;  // crash point past the end of the workload's writes
    }
    ++cell.crashes;

    auto recovered = Machine::Recover(machine);
    recovered->auditor().set_abort_on_violation(false);

    const RecoveryStats& stats = recovered->recovery_stats();
    cell.totals.mounts += stats.mounts;
    cell.totals.pages_recovered += stats.pages_recovered;
    cell.totals.pages_lost += stats.pages_lost;
    cell.totals.orphans_discarded += stats.orphans_discarded;
    cell.totals.journal_replays += stats.journal_replays;
    cell.totals.checkpoint_loads += stats.checkpoint_loads;
    cell.totals.torn_writes_detected += stats.torn_writes_detected;
    cell.totals.mount_ns += stats.mount_ns;

    const size_t cycle_violations = recovered->RunAudit();
    cell.violations += cycle_violations;
    if (cycle_violations > 0 && cell.first_violation.empty()) {
      const auto& v = recovered->auditor().last_violations().front();
      cell.first_violation = v.subsystem + "/" + v.invariant + ": " + v.detail;
    }

    // Differential content check: recovered bytes must be a version the
    // workload wrote, or zeros with the segment aborted (the lost ladder).
    Segment* rec_segment = recovered->pager().GetSegment(segment->id());
    for (uint32_t p = 0; p < num_pages; ++p) {
      if (rec_segment->page(p).state == PageState::kUntouched &&
          segment->page(p).state == PageState::kUntouched) {
        continue;
      }
      auto span = recovered->pager().Access(*rec_segment, p, /*write=*/false);
      if (IsAllZero(span)) {
        if (!rec_segment->aborted()) {
          ++cell.content_mismatches;
        }
        continue;
      }
      bool known = false;
      for (uint32_t v = 1; v <= versions[p] && !known; ++v) {
        known = MatchesPattern(span, p, v);
      }
      if (!known) {
        ++cell.content_mismatches;
      }
    }
    cell.violations += recovered->RunAudit();  // the content scan added traffic

    if (snapshot && i + 1 == points) {
      cell.metrics = recovered->metrics().Snapshot();
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  uint64_t points_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--points=", 9) == 0) {
      points_override = std::strtoull(argv[i] + 9, nullptr, 10);
    }
  }

  // Large enough that even the LFS backend (508 KB in-memory segment buffer)
  // flushes real segments to disk in every cell.
  const uint32_t num_pages = quick ? 640 : 896;
  // Crash density axis: a sparse and a dense sampling of the same workload.
  std::vector<uint64_t> densities = quick ? std::vector<uint64_t>{2, 5}
                                          : std::vector<uint64_t>{4, 12};
  if (points_override > 0) {
    densities = {std::max<uint64_t>(1, points_override / 3), points_override};
  }

  const std::vector<std::pair<std::string, CompressedSwapKind>> backends = {
      {"clustered", CompressedSwapKind::kClustered},
      {"fixed_compressed", CompressedSwapKind::kFixedOffset},
      {"lfs", CompressedSwapKind::kLfs},
  };

  BenchReport report("crash_soak", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("num_pages", uint64_t{num_pages});
  report.Config("quick", quick);

  std::printf("crash soak: %zu backends x {flat, superblock} x %zu crash densities, "
              "%u-page workload\n\n",
              backends.size(), densities.size(), num_pages);
  std::printf("%18s %11s %7s %8s %10s %6s %9s %7s %11s %10s\n", "backend", "packing",
              "points", "crashes", "recovered", "lost", "replays", "torn",
              "mismatches", "violations");

  std::vector<std::function<CellResult()>> jobs;
  for (const auto& [bname, kind] : backends) {
    for (const bool superblock : {false, true}) {
      for (const uint64_t points : densities) {
        // One representative snapshot: the densest, most stressed cell.
        const bool snapshot = report.enabled() && bname == backends.back().first &&
                              superblock && points == densities.back();
        const auto k = kind;
        jobs.push_back([k, superblock, points, num_pages, snapshot] {
          return RunCell(k, superblock, points, num_pages, snapshot);
        });
      }
    }
  }
  const std::vector<CellResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  RecoveryStats grid;
  size_t total_violations = 0;
  uint64_t total_mismatches = 0;
  uint64_t total_points = 0;
  uint64_t total_crashes = 0;
  size_t job = 0;
  std::string first_violation;
  for (const auto& [bname, kind] : backends) {
    for (const bool superblock : {false, true}) {
      for (size_t d = 0; d < densities.size(); ++d) {
        const CellResult& r = results[job++];
        total_violations += r.violations;
        total_mismatches += r.content_mismatches;
        total_points += r.crash_points;
        total_crashes += r.crashes;
        grid.mounts += r.totals.mounts;
        grid.pages_recovered += r.totals.pages_recovered;
        grid.pages_lost += r.totals.pages_lost;
        grid.orphans_discarded += r.totals.orphans_discarded;
        grid.journal_replays += r.totals.journal_replays;
        grid.checkpoint_loads += r.totals.checkpoint_loads;
        grid.torn_writes_detected += r.totals.torn_writes_detected;
        grid.mount_ns += r.totals.mount_ns;
        if (first_violation.empty()) {
          first_violation = r.first_violation;
        }
        if (!r.metrics.empty()) {
          report.MergeMetrics(r.metrics);
        }
        std::printf("%18s %11s %7llu %8llu %10llu %6llu %9llu %7llu %11llu %10zu\n",
                    bname.c_str(), superblock ? "superblock" : "flat",
                    static_cast<unsigned long long>(r.crash_points),
                    static_cast<unsigned long long>(r.crashes),
                    static_cast<unsigned long long>(r.totals.pages_recovered),
                    static_cast<unsigned long long>(r.totals.pages_lost),
                    static_cast<unsigned long long>(r.totals.journal_replays),
                    static_cast<unsigned long long>(r.totals.torn_writes_detected),
                    static_cast<unsigned long long>(r.content_mismatches),
                    r.violations);
        report.AddRow()
            .Set("backend", bname)
            .Set("superblock", superblock ? 1 : 0)
            .Set("crash_points", r.crash_points)
            .Set("crashes", r.crashes)
            .Set("pages_recovered", r.totals.pages_recovered)
            .Set("pages_lost", r.totals.pages_lost)
            .Set("orphans_discarded", r.totals.orphans_discarded)
            .Set("journal_replays", r.totals.journal_replays)
            .Set("checkpoint_loads", r.totals.checkpoint_loads)
            .Set("torn_writes_detected", r.totals.torn_writes_detected)
            .Set("mount_ns", r.totals.mount_ns)
            .Set("content_mismatches", r.content_mismatches)
            .Set("violations", static_cast<uint64_t>(r.violations));
      }
    }
  }

  // Grid totals override the representative snapshot's per-machine values so
  // the JSON validator asserts on the whole sweep (schema: recovery.* are
  // counters, audit.violations must be 0, crash_soak requires the full
  // recovery metric set).
  report.MergeMetrics({
      {"recovery.mounts", static_cast<double>(grid.mounts)},
      {"recovery.pages_recovered", static_cast<double>(grid.pages_recovered)},
      {"recovery.pages_lost", static_cast<double>(grid.pages_lost)},
      {"recovery.orphans_discarded", static_cast<double>(grid.orphans_discarded)},
      {"recovery.journal_replays", static_cast<double>(grid.journal_replays)},
      {"recovery.checkpoint_loads", static_cast<double>(grid.checkpoint_loads)},
      {"recovery.torn_writes_detected", static_cast<double>(grid.torn_writes_detected)},
      {"recovery.mount_ns", static_cast<double>(grid.mount_ns)},
      {"recovery.content_mismatches", static_cast<double>(total_mismatches)},
      {"audit.violations", static_cast<double>(total_violations)},
  });

  std::printf("\ncrash points fired: %llu / %llu, pages recovered: %llu, lost: %llu, "
              "mismatches: %llu, violations: %zu\n",
              static_cast<unsigned long long>(total_crashes),
              static_cast<unsigned long long>(total_points),
              static_cast<unsigned long long>(grid.pages_recovered),
              static_cast<unsigned long long>(grid.pages_lost),
              static_cast<unsigned long long>(total_mismatches), total_violations);
  if (!first_violation.empty()) {
    std::printf("first violation: %s\n", first_violation.c_str());
  }

  const bool wrote = report.WriteIfEnabled();
  if (total_violations > 0 || total_mismatches > 0 || total_crashes == 0 ||
      grid.pages_recovered == 0) {
    return 1;
  }
  return report.enabled() && !wrote ? 1 : 0;
}
