// Paper section 3: "In some systems it is also possible for an application to
// issue an 'advisory' to the operating system to indicate that least-recently-
// used (LRU) page replacement will behave poorly; in this example, half the pages
// could effectively be pinned in memory with faults occurring only on the other
// half. With fast compression, however, even reducing I/O by a factor of two will
// be inferior to keeping all pages compressed in memory."
//
// This benchmark stages that comparison on the sequential 2x-memory workload:
//   1. the unmodified system (LRU defeated: every touch faults to disk);
//   2. the unmodified system with the advisory pinning half the working set
//      (faults halve but still go to disk);
//   3. the compression cache (every fault served by decompression).
#include <cstdio>

#include "apps/thrasher.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

ThrasherResult Run(bool use_ccache, double pin_fraction) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = 2 * kUserMemory;
  options.write = true;
  options.passes = 3;
  options.advisory_pin_fraction = pin_fraction;
  Thrasher app(options);
  app.Run(machine);
  return app.result();
}

}  // namespace

int main() {
  std::printf("LRU advisory vs compression cache (4 MB machine, 8 MB rw working set)\n\n");
  const ThrasherResult std_result = Run(false, 0.0);
  const ThrasherResult advisory_result = Run(false, 0.45);
  const ThrasherResult cc_result = Run(true, 0.0);

  std::printf("%-34s %12s %10s\n", "system", "ms/access", "speedup");
  std::printf("%-34s %12.3f %9.2fx\n", "unmodified", std_result.AvgAccessMillis(), 1.0);
  std::printf("%-34s %12.3f %9.2fx\n", "unmodified + advisory (pin ~half)",
              advisory_result.AvgAccessMillis(),
              std_result.AvgAccessMillis() / advisory_result.AvgAccessMillis());
  std::printf("%-34s %12.3f %9.2fx\n", "compression cache",
              cc_result.AvgAccessMillis(),
              std_result.AvgAccessMillis() / cc_result.AvgAccessMillis());
  std::printf(
      "\nThe advisory roughly halves the fault-to-disk rate; the compression cache\n"
      "replaces disk faults with decompressions and wins anyway — the paper's\n"
      "section-3 argument.\n");
  return 0;
}
