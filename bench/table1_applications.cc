// Table 1: "Application speedups."
//
// Runs each of the paper's application benchmarks on the unmodified system and on
// the compression-cache system and reports, per row:
//   time (std), time (CC), speedup, mean compression of kept pages (% of page),
//   and the fraction of compressed pages that failed the 4:3 threshold
//   ("uncompressible pages").
//
// Paper's rows, for reference (DECstation 5000/200, ~14 MB user memory, RZ57):
//   compare      16:14   6:04  2.68   31%   0.1%
//   isca         43:15  27:00  1.60   32%   1.7%
//   sort partial 13:32  10:24  1.30   30%    49%
//   gold create  14:03  15:38  0.90   59%    42%
//   gold cold    45:30  56:36  0.80   60%    10%
//   sort random  26:17  28:51  0.91   37%    98%
//   gold warm    35:56  49:00  0.73   52%   0.9%
//
// Working sets here are scaled down ~2x (with memory scaled the same way) so the
// whole table regenerates in minutes of host time; the memory-pressure ratios
// match the paper's. Absolute times differ from 1993 hardware; the *shape* —
// which applications win, which lose, and why — is the reproduction target.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/compare.h"
#include "apps/gold.h"
#include "apps/isca.h"
#include "apps/sort.h"
#include "bench_json.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 8 * kMiB;

// Set in main when --json is active; the compare CC run contributes the
// machine-wide metric snapshot (one representative machine, not all fourteen).
BenchReport* g_report = nullptr;

struct RowResult {
  SimDuration elapsed;
  double kept_ratio_pct = 0;      // mean compressed size of kept pages, % of page
  double uncompressible_pct = 0;  // pages failing 4:3, % of pages compressed
};

Machine MakeMachine(bool use_ccache) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  return Machine(config);
}

RowResult Finish(Machine& machine, SimDuration elapsed) {
  RowResult r;
  r.elapsed = elapsed;
  if (machine.ccache() != nullptr) {
    const auto& s = machine.ccache()->stats();
    r.kept_ratio_pct = s.kept_ratio_pct.mean();
    r.uncompressible_pct = s.pages_compressed == 0
                               ? 0.0
                               : 100.0 * static_cast<double>(s.pages_rejected) /
                                     static_cast<double>(s.pages_compressed);
  }
  return r;
}

RowResult RunCompare(bool cc) {
  Machine machine = MakeMachine(cc);
  CompareOptions options;
  options.rows = 48 * 1024;
  options.band_width = 256;  // band = 12 MB of traceback cells vs 8 MB memory
  Compare app(options);
  app.Run(machine);
  if (cc && g_report != nullptr) {
    g_report->MergeMetrics(machine.metrics());
  }
  return Finish(machine, app.result().elapsed);
}

RowResult RunIsca(bool cc) {
  Machine machine = MakeMachine(cc);
  IscaOptions options;
  options.simulated_blocks = 1'300'000;      // ~10.4 MB directory
  options.cache_lines_per_proc = 32 * 1024;  // +2 MB of tag arrays
  options.references = 600'000;
  // The original was "both CPU-intensive and memory-intensive": a detailed
  // coherence simulator spends on the order of 10^4 instructions per reference
  // on a 25-MHz CPU.
  options.cpu_per_reference = SimDuration::Micros(500);
  IscaCacheSim app(options);
  app.Run(machine);
  return Finish(machine, app.result().elapsed);
}

RowResult RunSort(bool cc, SortVariant variant) {
  Machine machine = MakeMachine(cc);
  SortOptions options;
  options.variant = variant;
  options.text_bytes = 7 * kMiB;  // text + refs ~ 12.5 MB vs 8 MB memory
  TextSort app(options);
  app.Run(machine);
  return Finish(machine, app.result().elapsed);
}

struct GoldRows {
  RowResult create;
  RowResult cold;
  RowResult warm;
};

// Per-phase compression statistics are diffs of the machine-wide counters, since
// the three gold rows share one long-running engine (as in the paper, where cold
// and warm queries ran against the same index engine process).
RowResult GoldPhaseRow(Machine& machine, SimDuration elapsed, const CcacheStats& before) {
  RowResult r;
  r.elapsed = elapsed;
  if (machine.ccache() != nullptr) {
    const auto& s = machine.ccache()->stats();
    const uint64_t compressed = s.pages_compressed - before.pages_compressed;
    const uint64_t rejected = s.pages_rejected - before.pages_rejected;
    const uint64_t kept_orig = s.original_bytes_kept - before.original_bytes_kept;
    const uint64_t kept_comp = s.compressed_bytes_kept - before.compressed_bytes_kept;
    r.kept_ratio_pct = kept_orig == 0 ? 0.0
                                      : 100.0 * static_cast<double>(kept_comp) /
                                            static_cast<double>(kept_orig);
    r.uncompressible_pct =
        compressed == 0
            ? 0.0
            : 100.0 * static_cast<double>(rejected) / static_cast<double>(compressed);
  }
  return r;
}

GoldRows RunGold(bool cc) {
  Machine machine = MakeMachine(cc);
  GoldOptions options;
  options.num_messages = 8192;
  options.message_bytes = 2048;  // 16 MB corpus -> index ~1.5x memory
  options.term_table_slots = 1 << 17;
  options.postings_bytes = 16 * kMiB;
  options.num_queries = 3072;

  GoldIndex engine(machine, options);
  engine.PrepareCorpus();
  auto snapshot = [&] {
    return machine.ccache() != nullptr ? machine.ccache()->stats() : CcacheStats{};
  };

  GoldRows rows;
  CcacheStats before = snapshot();
  const GoldPhaseResult create = engine.RunCreate();
  rows.create = GoldPhaseRow(machine, create.elapsed, before);
  before = snapshot();
  const GoldPhaseResult cold = engine.RunQueries();
  rows.cold = GoldPhaseRow(machine, cold.elapsed, before);
  before = snapshot();
  const GoldPhaseResult warm = engine.RunQueries();
  rows.warm = GoldPhaseRow(machine, warm.elapsed, before);
  return rows;
}

void PrintRow(const std::string& name, const RowResult& std_row, const RowResult& cc_row,
              double paper_speedup) {
  const double speedup = static_cast<double>(std_row.elapsed.nanos()) /
                         static_cast<double>(cc_row.elapsed.nanos());
  std::printf("%-13s %9s %9s %8.2f %8.0f%% %10.1f%%   (paper: %.2f)\n", name.c_str(),
              std_row.elapsed.ToMinSec().c_str(), cc_row.elapsed.ToMinSec().c_str(), speedup,
              cc_row.kept_ratio_pct, cc_row.uncompressible_pct, paper_speedup);
  std::fflush(stdout);
  if (g_report != nullptr) {
    g_report->AddRow()
        .Set("application", name)
        .Set("std_seconds", std_row.elapsed.seconds())
        .Set("cc_seconds", cc_row.elapsed.seconds())
        .Set("speedup", speedup)
        .Set("kept_ratio_pct", cc_row.kept_ratio_pct)
        .Set("uncompressible_pct", cc_row.uncompressible_pct)
        .Set("paper_speedup", paper_speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report("table1_applications", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("codec", std::string("lzrw1"));
  report.Config("disk", std::string("rz57"));
  g_report = &report;

  std::printf("Table 1: application speedups (%llu MB user memory, RZ57-class disk, LZRW1)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  std::printf("%-13s %9s %9s %8s %9s %11s\n", "application", "time(std)", "time(CC)", "speedup",
              "ratio(%)", "uncompr(%)");

  PrintRow("compare", RunCompare(false), RunCompare(true), 2.68);
  PrintRow("isca", RunIsca(false), RunIsca(true), 1.60);
  PrintRow("sort_partial", RunSort(false, SortVariant::kPartial),
           RunSort(true, SortVariant::kPartial), 1.30);

  const GoldRows gold_std = RunGold(false);
  const GoldRows gold_cc = RunGold(true);
  PrintRow("gold_create", gold_std.create, gold_cc.create, 0.90);
  PrintRow("gold_cold", gold_std.cold, gold_cc.cold, 0.80);
  PrintRow("sort_random", RunSort(false, SortVariant::kRandom),
           RunSort(true, SortVariant::kRandom), 0.91);
  PrintRow("gold_warm", gold_std.warm, gold_cc.warm, 0.73);

  std::printf("\nNote: 'ratio' and 'uncompr' come from the CC run's compression statistics;\n");
  std::printf("the std run performs no compression.\n");
  return report.WriteIfEnabled() ? 0 : 1;
}
