// Ablation: the memory-arbitration bias for compressed pages (paper section 4.2).
//
// "The more the system favors compressed pages, the larger the compression cache
// will tend to grow in periods of heavy paging; with a very low bias ... the
// compression cache degenerates into a buffer for compressing and decompressing
// pages between memory and the backing store. Interestingly, although a single
// penalty between VM and the file system works well across a wide range of
// applications, the optimal penalty for the compression cache is
// application-dependent."
//
// Two workloads that pull in opposite directions:
//   * a cyclic re-reader (thrasher ro) that wants the cache as large as possible;
//   * a high-locality random-walk workload that wants uncompressed pages favored.
#include <cstdio>
#include <functional>
#include <vector>

#include "apps/thrasher.h"
#include "core/machine.h"
#include "sweep_runner.h"
#include "util/rng.h"
#include "vm/heap.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

Machine MakeMachine(SimDuration ccache_bias) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.biases.ccache = ccache_bias;
  return Machine(config);
}

SimDuration RunCyclic(SimDuration bias) {
  Machine machine = MakeMachine(bias);
  ThrasherOptions options;
  options.address_space_bytes = 7 * kMiB;
  options.write = false;
  options.passes = 3;
  options.content = ContentClass::kSparseNumeric;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

SimDuration RunLocalWalk(SimDuration bias) {
  Machine machine = MakeMachine(bias);
  const uint64_t pages = (7 * kMiB) / kPageSize;
  Heap heap = machine.NewHeap(pages * kPageSize);
  Rng rng(9);
  std::vector<uint8_t> image(kPageSize);
  for (uint64_t p = 0; p < pages; ++p) {
    FillPage(image, ContentClass::kSparseNumeric, rng);
    heap.WriteBytes(p * kPageSize, image);
  }
  // High-locality phase: 95% of accesses within a hot quarter of the space.
  const SimTime start = machine.clock().Now();
  uint64_t hot_base = 0;
  for (int i = 0; i < 40'000; ++i) {
    if (i % 8000 == 0) {
      hot_base = rng.Below(pages - pages / 4);  // hot set shifts occasionally
    }
    const uint64_t page = rng.Chance(0.95) ? hot_base + rng.Below(pages / 4)
                                           : rng.Below(pages);
    heap.Store<uint32_t>(page * kPageSize + 64, static_cast<uint32_t>(i));
  }
  return machine.clock().Now() - start;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: compression-cache age bias (%llu MB machine, 7 MB data)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  const double biases_s[] = {0, 1, 5, 30, 120};

  // Both workloads for every bias point run as one fan-out (ten machines).
  std::vector<std::function<SimDuration()>> jobs;
  for (const double b : biases_s) {
    jobs.push_back([b] { return RunCyclic(SimDuration::Seconds(b)); });
    jobs.push_back([b] { return RunLocalWalk(SimDuration::Seconds(b)); });
  }
  const std::vector<SimDuration> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::printf("%-12s %16s %18s\n", "bias (s)", "cyclic re-read", "local random walk");
  size_t i = 0;
  for (const double b : biases_s) {
    const SimDuration cyclic = results[i++];
    const SimDuration walk = results[i++];
    std::printf("%-12.0f %16s %18s\n", b, cyclic.ToMinSec().c_str(), walk.ToMinSec().c_str());
  }
  std::printf("\n(The best bias differs per workload — the paper's point.)\n");
  return 0;
}
