// Supporting microbenchmarks: real (host) throughput and compression ratios of the
// codec library over the content classes, plus the LZRW1 hash-table size
// trade-off the paper discusses in section 4.4. These are google-benchmark
// measurements of the actual code, not simulated time — they back the cost
// model's compression/decompression bandwidth parameters.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "compress/pagegen.h"
#include "compress/registry.h"
#include "util/rng.h"
#include "util/units.h"

using namespace compcache;

namespace {

std::vector<uint8_t> MakeCorpus(ContentClass content, size_t pages) {
  Rng rng(42);
  std::vector<uint8_t> corpus(pages * kPageSize);
  for (size_t p = 0; p < pages; ++p) {
    FillPage(std::span<uint8_t>(corpus.data() + p * kPageSize, kPageSize), content, rng);
  }
  return corpus;
}

void BM_Compress(benchmark::State& state, const std::string& codec_name,
                 ContentClass content) {
  auto codec = MakeCodec(codec_name);
  const auto corpus = MakeCorpus(content, 64);
  std::vector<uint8_t> out(codec->MaxCompressedSize(kPageSize));
  size_t page = 0;
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  for (auto _ : state) {
    const auto src = std::span<const uint8_t>(corpus.data() + page * kPageSize, kPageSize);
    const size_t c = codec->Compress(src, out);
    benchmark::DoNotOptimize(out.data());
    in_bytes += kPageSize;
    out_bytes += c;
    page = (page + 1) % 64;
  }
  state.SetBytesProcessed(static_cast<int64_t>(in_bytes));
  state.counters["ratio_pct"] =
      100.0 * static_cast<double>(out_bytes) / static_cast<double>(in_bytes);
}

void BM_Decompress(benchmark::State& state, const std::string& codec_name,
                   ContentClass content) {
  auto codec = MakeCodec(codec_name);
  const auto corpus = MakeCorpus(content, 64);
  std::vector<std::vector<uint8_t>> compressed(64);
  for (size_t p = 0; p < 64; ++p) {
    compressed[p].resize(codec->MaxCompressedSize(kPageSize));
    const size_t c = codec->Compress(
        std::span<const uint8_t>(corpus.data() + p * kPageSize, kPageSize), compressed[p]);
    compressed[p].resize(c);
  }
  std::vector<uint8_t> out(kPageSize);
  size_t page = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    codec->Decompress(compressed[page], out);
    benchmark::DoNotOptimize(out.data());
    bytes += kPageSize;
    page = (page + 1) % 64;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}

void BM_Lzrw1HashBits(benchmark::State& state) {
  const auto bits = static_cast<unsigned>(state.range(0));
  auto codec = MakeCodec("lzrw1", bits);
  const auto corpus = MakeCorpus(ContentClass::kText, 64);
  std::vector<uint8_t> out(codec->MaxCompressedSize(kPageSize));
  size_t page = 0;
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  for (auto _ : state) {
    const auto src = std::span<const uint8_t>(corpus.data() + page * kPageSize, kPageSize);
    out_bytes += codec->Compress(src, out);
    in_bytes += kPageSize;
    page = (page + 1) % 64;
  }
  state.SetBytesProcessed(static_cast<int64_t>(in_bytes));
  state.counters["ratio_pct"] =
      100.0 * static_cast<double>(out_bytes) / static_cast<double>(in_bytes);
  state.counters["table_kb"] = static_cast<double>((4u << bits)) / 1024.0;
}

void RegisterAll() {
  const std::pair<ContentClass, const char*> contents[] = {
      {ContentClass::kZero, "zero"},
      {ContentClass::kSparseNumeric, "sparse"},
      {ContentClass::kRepetitiveText, "reptext"},
      {ContentClass::kText, "text"},
      {ContentClass::kShuffledWords, "words"},
      {ContentClass::kPointerArray, "pointer"},
      {ContentClass::kRandom, "random"},
  };
  for (const auto& name : KnownCodecNames()) {
    for (const auto& [content, cname] : contents) {
      benchmark::RegisterBenchmark(("compress/" + name + "/" + cname).c_str(), BM_Compress,
                                   name, content);
      benchmark::RegisterBenchmark(("decompress/" + name + "/" + cname).c_str(),
                                   BM_Decompress, name, content);
    }
  }
  benchmark::RegisterBenchmark("lzrw1/hash_bits", BM_Lzrw1HashBits)
      ->Arg(8)
      ->Arg(10)
      ->Arg(12)
      ->Arg(14)
      ->Arg(16)
      ->Arg(18);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
