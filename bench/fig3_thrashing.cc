// Figure 3: "Compression Cache Performance Under Thrashing."
//
// Reproduces both panels on the paper's configuration: a machine with ~6 MB
// available to user processes paging to an RZ57-class local disk, thrasher
// sweeping address spaces from 2 to 40 MB with ~4:1-compressible pages.
//
//   (a) average page access time (ms) for std_rw, cc_rw, std_ro, cc_ro;
//   (b) speedup of cc relative to std for the ro and rw variants.
//
// Expected shape (paper): with the unmodified system every fault costs disk
// operations; with the compression cache, access time stays low while the
// compressed working set fits in memory (up to ~3-4x the physical memory), then
// rises once the backing store is needed — but stays below the unmodified system
// thanks to clustered compressed transfers.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/thrasher.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;

double RunOne(uint64_t address_space, bool use_ccache, bool write) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = write;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1, like the paper
  Thrasher app(options);
  app.Run(machine);
  return app.result().AvgAccessMillis();
}

}  // namespace

int main() {
  const uint64_t sizes_mb[] = {2, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 40};

  std::printf("Figure 3: thrasher on a %llu MB machine (RZ57-class disk, LZRW1, 4 KB pages)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  std::printf("(a) average page access time (ms) and (b) speedup vs unmodified\n\n");
  std::printf("%8s %10s %10s %10s %10s %11s %11s\n", "size(MB)", "std_rw", "cc_rw", "std_ro",
              "cc_ro", "speedup_rw", "speedup_ro");

  std::string csv = "size_mb,std_rw_ms,cc_rw_ms,std_ro_ms,cc_ro_ms\n";
  for (const uint64_t mb : sizes_mb) {
    const uint64_t bytes = mb * kMiB;
    const double std_rw = RunOne(bytes, false, true);
    const double cc_rw = RunOne(bytes, true, true);
    const double std_ro = RunOne(bytes, false, false);
    const double cc_ro = RunOne(bytes, true, false);
    std::printf("%8llu %10.3f %10.3f %10.3f %10.3f %11.2f %11.2f\n",
                static_cast<unsigned long long>(mb), std_rw, cc_rw, std_ro, cc_ro,
                cc_rw > 0 ? std_rw / cc_rw : 0.0, cc_ro > 0 ? std_ro / cc_ro : 0.0);
    std::fflush(stdout);
    char line[160];
    std::snprintf(line, sizeof(line), "%llu,%.3f,%.3f,%.3f,%.3f\n",
                  static_cast<unsigned long long>(mb), std_rw, cc_rw, std_ro, cc_ro);
    csv += line;
  }

  std::printf("\nCSV:\n%s", csv.c_str());
  return 0;
}
