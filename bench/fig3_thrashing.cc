// Figure 3: "Compression Cache Performance Under Thrashing."
//
// Reproduces both panels on the paper's configuration: a machine with ~6 MB
// available to user processes paging to an RZ57-class local disk, thrasher
// sweeping address spaces from 2 to 40 MB with ~4:1-compressible pages.
//
//   (a) average page access time (ms) for std_rw, cc_rw, std_ro, cc_ro;
//   (b) speedup of cc relative to std for the ro and rw variants.
//
// Expected shape (paper): with the unmodified system every fault costs disk
// operations; with the compression cache, access time stays low while the
// compressed working set fits in memory (up to ~3-4x the physical memory), then
// rises once the backing store is needed — but stays below the unmodified system
// thanks to clustered compressed transfers.
//
// --faults=<rate> enables deterministic fault injection (transient disk read and
// write errors at the given per-operation probability) on every machine in the
// sweep. The expected shape is *graceful* degradation: access times creep up
// with the retry/backoff cost, retries are counted, and no pages are lost —
// there is no cliff and no wrong result as the rate rises 0 -> 1e-3.
//
// --mix=none|gold|sort time-shares every machine between the thrasher and a
// partner process (round-robin, 1 ms quantum) — the paper's multiprogramming
// regime on the thrashing sweep. Access times are still the thrasher's; the
// partner's competition for frames shifts them, and mix.* metrics in the JSON
// report attribute the machine's faults between the two processes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/gold.h"
#include "apps/sort.h"
#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "proc/scheduler.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;

enum class MixPartner { kNone, kGold, kSort };

struct RunResult {
  double avg_access_ms = 0.0;
  uint64_t disk_retries = 0;
  uint64_t pages_lost = 0;
  // Full metric snapshot, taken for one representative run only (the machine
  // is gone by the time the report is assembled). When a mix partner runs,
  // hand-built mix.* metrics ride along.
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, double>> mix_metrics;
};

std::unique_ptr<App> MakePartner(MixPartner partner) {
  if (partner == MixPartner::kGold) {
    GoldOptions gold;
    gold.num_messages = 512;
    gold.message_bytes = 1024;
    gold.dictionary_words = 8 * 1024;
    gold.term_table_slots = 1 << 13;
    gold.postings_bytes = 2 * kMiB;
    gold.num_queries = 256;
    return std::make_unique<GoldApp>(gold);
  }
  SortOptions sort;
  sort.variant = SortVariant::kPartial;
  sort.text_bytes = 512 * kKiB;
  sort.dictionary_words = 8 * 1024;
  return std::make_unique<TextSort>(sort);
}

RunResult RunOne(uint64_t address_space, bool use_ccache, bool write, double fault_rate,
                 MixPartner partner, bool snapshot_metrics) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  if (fault_rate > 0.0) {
    config.fault_injection.enabled = true;
    config.fault_injection.seed = 1993;
    config.fault_injection.disk_read_error_rate = fault_rate;
    config.fault_injection.disk_write_error_rate = fault_rate;
  }
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = write;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1, like the paper

  RunResult result;
  if (partner == MixPartner::kNone) {
    // Single-process path, identical to the pre-scheduler bench.
    Thrasher app(options);
    app.Run(machine);
    result.avg_access_ms = app.result().AvgAccessMillis();
  } else {
    Scheduler sched(machine);
    const SimTime start = machine.clock().Now();
    sched.Spawn("thrash", std::make_unique<Thrasher>(options));
    sched.Spawn(partner == MixPartner::kGold ? "gold" : "sorter", MakePartner(partner));
    sched.RunToCompletion();
    const auto& app = static_cast<const Thrasher&>(sched.process(1).app());
    result.avg_access_ms = app.result().AvgAccessMillis();
    if (snapshot_metrics) {
      const SimDuration elapsed = machine.clock().Now() - start;
      result.mix_metrics.emplace_back("mix.elapsed_ns", static_cast<double>(elapsed.nanos()));
      result.mix_metrics.emplace_back("mix.processes", 2.0);
      for (uint32_t pid = 1; pid <= 2; ++pid) {
        const Process& proc = sched.process(pid);
        result.mix_metrics.emplace_back("mix." + proc.name() + ".run_ns",
                                        static_cast<double>(proc.stats().run_time.nanos()));
        result.mix_metrics.emplace_back("mix." + proc.name() + ".faults",
                                        static_cast<double>(proc.stats().faults));
      }
    }
  }
  result.disk_retries = machine.disk().stats().read_retries + machine.disk().stats().write_retries;
  result.pages_lost = machine.pager().stats().pages_lost;
  if (snapshot_metrics) {
    result.metrics = machine.metrics().Snapshot();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: two sizes instead of twelve, for CI smoke runs.
  // --faults=<rate>: per-operation transient disk error probability (default 0).
  // --mix=none|gold|sort: time-share each machine with a partner process.
  bool quick = false;
  double fault_rate = 0.0;
  MixPartner partner = MixPartner::kNone;
  std::string mix_name = "none";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_rate = std::strtod(argv[i] + 9, nullptr);
    } else if (std::strncmp(argv[i], "--mix=", 6) == 0) {
      mix_name = argv[i] + 6;
      if (mix_name == "gold") {
        partner = MixPartner::kGold;
      } else if (mix_name == "sort") {
        partner = MixPartner::kSort;
      } else if (mix_name != "none") {
        std::fprintf(stderr, "unknown --mix=%s (expected none|gold|sort)\n", mix_name.c_str());
        return 1;
      }
    }
  }
  const std::vector<uint64_t> sizes_mb = quick
                                             ? std::vector<uint64_t>{2, 8}
                                             : std::vector<uint64_t>{2,  4,  5,  6,  8,  10,
                                                                     12, 15, 20, 25, 30, 40};

  BenchReport report("fig3_thrashing", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("content", std::string("sparse_numeric"));
  report.Config("passes", uint64_t{2});
  report.Config("quick", quick);
  report.Config("fault_rate", fault_rate);
  report.Config("mix", mix_name);

  std::printf("Figure 3: thrasher on a %llu MB machine (RZ57-class disk, LZRW1, 4 KB pages)\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  if (fault_rate > 0.0) {
    std::printf("fault injection: transient disk error rate %g per op\n", fault_rate);
  }
  if (partner != MixPartner::kNone) {
    std::printf("mix: thrasher time-shared with %s (round-robin, 1 ms quantum)\n",
                mix_name.c_str());
  }
  std::printf("\n(a) average page access time (ms) and (b) speedup vs unmodified\n\n");
  std::printf("%8s %10s %10s %10s %10s %11s %11s %9s %6s\n", "size(MB)", "std_rw", "cc_rw",
              "std_ro", "cc_ro", "speedup_rw", "speedup_ro", "retries", "lost");

  // Fan the whole sweep (four machines per size) across the pool; the table is
  // formatted afterwards in sweep order, so stdout and JSON are byte-identical
  // to a single-threaded run.
  std::vector<std::function<RunResult()>> jobs;
  for (const uint64_t mb : sizes_mb) {
    const uint64_t bytes = mb * kMiB;
    // The last size's cc_rw machine contributes the metric snapshot: the most
    // memory-pressured configuration, so every subsystem has non-zero counters.
    const bool snapshot = mb == sizes_mb.back() && report.enabled();
    jobs.push_back([bytes, fault_rate, partner] {
      return RunOne(bytes, false, true, fault_rate, partner, false);
    });
    jobs.push_back([bytes, fault_rate, partner, snapshot] {
      return RunOne(bytes, true, true, fault_rate, partner, snapshot);
    });
    jobs.push_back([bytes, fault_rate, partner] {
      return RunOne(bytes, false, false, fault_rate, partner, false);
    });
    jobs.push_back([bytes, fault_rate, partner] {
      return RunOne(bytes, true, false, fault_rate, partner, false);
    });
  }
  const std::vector<RunResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::string csv = "size_mb,std_rw_ms,cc_rw_ms,std_ro_ms,cc_ro_ms,retries,pages_lost\n";
  for (size_t s = 0; s < sizes_mb.size(); ++s) {
    const uint64_t mb = sizes_mb[s];
    const RunResult& std_rw = results[s * 4 + 0];
    const RunResult& cc_rw = results[s * 4 + 1];
    const RunResult& std_ro = results[s * 4 + 2];
    const RunResult& cc_ro = results[s * 4 + 3];
    if (!cc_rw.metrics.empty()) {
      report.MergeMetrics(cc_rw.metrics);
      report.MergeMetrics(cc_rw.mix_metrics);
    }
    const uint64_t retries = std_rw.disk_retries + cc_rw.disk_retries + std_ro.disk_retries +
                             cc_ro.disk_retries;
    const uint64_t lost =
        std_rw.pages_lost + cc_rw.pages_lost + std_ro.pages_lost + cc_ro.pages_lost;
    std::printf("%8llu %10.3f %10.3f %10.3f %10.3f %11.2f %11.2f %9llu %6llu\n",
                static_cast<unsigned long long>(mb), std_rw.avg_access_ms, cc_rw.avg_access_ms,
                std_ro.avg_access_ms, cc_ro.avg_access_ms,
                cc_rw.avg_access_ms > 0 ? std_rw.avg_access_ms / cc_rw.avg_access_ms : 0.0,
                cc_ro.avg_access_ms > 0 ? std_ro.avg_access_ms / cc_ro.avg_access_ms : 0.0,
                static_cast<unsigned long long>(retries), static_cast<unsigned long long>(lost));
    std::fflush(stdout);
    char line[200];
    std::snprintf(line, sizeof(line), "%llu,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n",
                  static_cast<unsigned long long>(mb), std_rw.avg_access_ms,
                  cc_rw.avg_access_ms, std_ro.avg_access_ms, cc_ro.avg_access_ms,
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(lost));
    csv += line;
    report.AddRow()
        .Set("size_mb", mb)
        .Set("std_rw_ms", std_rw.avg_access_ms)
        .Set("cc_rw_ms", cc_rw.avg_access_ms)
        .Set("std_ro_ms", std_ro.avg_access_ms)
        .Set("cc_ro_ms", cc_ro.avg_access_ms)
        .Set("speedup_rw",
             cc_rw.avg_access_ms > 0 ? std_rw.avg_access_ms / cc_rw.avg_access_ms : 0.0)
        .Set("speedup_ro",
             cc_ro.avg_access_ms > 0 ? std_ro.avg_access_ms / cc_ro.avg_access_ms : 0.0)
        .Set("disk_retries", retries)
        .Set("pages_lost", lost);
  }

  std::printf("\nCSV:\n%s", csv.c_str());
  return report.WriteIfEnabled() ? 0 : 1;
}
