// Figure 3: "Compression Cache Performance Under Thrashing."
//
// Reproduces both panels on the paper's configuration: a machine with ~6 MB
// available to user processes paging to an RZ57-class local disk, thrasher
// sweeping address spaces from 2 to 40 MB with ~4:1-compressible pages.
//
//   (a) average page access time (ms) for std_rw, cc_rw, std_ro, cc_ro;
//   (b) speedup of cc relative to std for the ro and rw variants.
//
// Expected shape (paper): with the unmodified system every fault costs disk
// operations; with the compression cache, access time stays low while the
// compressed working set fits in memory (up to ~3-4x the physical memory), then
// rises once the backing store is needed — but stays below the unmodified system
// thanks to clustered compressed transfers.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;

// When `report` is non-null the machine's full metric snapshot is folded into
// it under `metrics_prefix` — done for one representative run, not all of them.
double RunOne(uint64_t address_space, bool use_ccache, bool write,
              BenchReport* report = nullptr, const std::string& metrics_prefix = "") {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = write;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1, like the paper
  Thrasher app(options);
  app.Run(machine);
  if (report != nullptr) {
    report->MergeMetrics(machine.metrics(), metrics_prefix);
  }
  return app.result().AvgAccessMillis();
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: two sizes instead of twelve, for CI smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const std::vector<uint64_t> sizes_mb = quick
                                             ? std::vector<uint64_t>{2, 8}
                                             : std::vector<uint64_t>{2,  4,  5,  6,  8,  10,
                                                                     12, 15, 20, 25, 30, 40};

  BenchReport report("fig3_thrashing", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("content", std::string("sparse_numeric"));
  report.Config("passes", uint64_t{2});
  report.Config("quick", quick);

  std::printf("Figure 3: thrasher on a %llu MB machine (RZ57-class disk, LZRW1, 4 KB pages)\n\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  std::printf("(a) average page access time (ms) and (b) speedup vs unmodified\n\n");
  std::printf("%8s %10s %10s %10s %10s %11s %11s\n", "size(MB)", "std_rw", "cc_rw", "std_ro",
              "cc_ro", "speedup_rw", "speedup_ro");

  std::string csv = "size_mb,std_rw_ms,cc_rw_ms,std_ro_ms,cc_ro_ms\n";
  for (const uint64_t mb : sizes_mb) {
    const uint64_t bytes = mb * kMiB;
    // The last size's cc_rw machine contributes the metric snapshot: the most
    // memory-pressured configuration, so every subsystem has non-zero counters.
    const bool snapshot = mb == sizes_mb.back() && report.enabled();
    const double std_rw = RunOne(bytes, false, true);
    const double cc_rw = RunOne(bytes, true, true, snapshot ? &report : nullptr);
    const double std_ro = RunOne(bytes, false, false);
    const double cc_ro = RunOne(bytes, true, false);
    std::printf("%8llu %10.3f %10.3f %10.3f %10.3f %11.2f %11.2f\n",
                static_cast<unsigned long long>(mb), std_rw, cc_rw, std_ro, cc_ro,
                cc_rw > 0 ? std_rw / cc_rw : 0.0, cc_ro > 0 ? std_ro / cc_ro : 0.0);
    std::fflush(stdout);
    char line[160];
    std::snprintf(line, sizeof(line), "%llu,%.3f,%.3f,%.3f,%.3f\n",
                  static_cast<unsigned long long>(mb), std_rw, cc_rw, std_ro, cc_ro);
    csv += line;
    report.AddRow()
        .Set("size_mb", mb)
        .Set("std_rw_ms", std_rw)
        .Set("cc_rw_ms", cc_rw)
        .Set("std_ro_ms", std_ro)
        .Set("cc_ro_ms", cc_ro)
        .Set("speedup_rw", cc_rw > 0 ? std_rw / cc_rw : 0.0)
        .Set("speedup_ro", cc_ro > 0 ? std_ro / cc_ro : 0.0);
  }

  std::printf("\nCSV:\n%s", csv.c_str());
  return report.WriteIfEnabled() ? 0 : 1;
}
