// Figure 3: "Compression Cache Performance Under Thrashing."
//
// Reproduces both panels on the paper's configuration: a machine with ~6 MB
// available to user processes paging to an RZ57-class local disk, thrasher
// sweeping address spaces from 2 to 40 MB with ~4:1-compressible pages.
//
//   (a) average page access time (ms) for std_rw, cc_rw, std_ro, cc_ro;
//   (b) speedup of cc relative to std for the ro and rw variants.
//
// Expected shape (paper): with the unmodified system every fault costs disk
// operations; with the compression cache, access time stays low while the
// compressed working set fits in memory (up to ~3-4x the physical memory), then
// rises once the backing store is needed — but stays below the unmodified system
// thanks to clustered compressed transfers.
//
// --faults=<rate> enables deterministic fault injection (transient disk read and
// write errors at the given per-operation probability) on every machine in the
// sweep. The expected shape is *graceful* degradation: access times creep up
// with the retry/backoff cost, retries are counted, and no pages are lost —
// there is no cliff and no wrong result as the rate rises 0 -> 1e-3.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;

struct RunResult {
  double avg_access_ms = 0.0;
  uint64_t disk_retries = 0;
  uint64_t pages_lost = 0;
  // Full metric snapshot, taken for one representative run only (the machine
  // is gone by the time the report is assembled).
  std::vector<std::pair<std::string, double>> metrics;
};

RunResult RunOne(uint64_t address_space, bool use_ccache, bool write, double fault_rate,
                 bool snapshot_metrics) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(kUserMemory)
                                    : MachineConfig::Unmodified(kUserMemory);
  if (fault_rate > 0.0) {
    config.fault_injection.enabled = true;
    config.fault_injection.seed = 1993;
    config.fault_injection.disk_read_error_rate = fault_rate;
    config.fault_injection.disk_write_error_rate = fault_rate;
  }
  Machine machine(config);

  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = write;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1, like the paper
  Thrasher app(options);
  app.Run(machine);
  RunResult result;
  result.avg_access_ms = app.result().AvgAccessMillis();
  result.disk_retries = machine.disk().stats().read_retries + machine.disk().stats().write_retries;
  result.pages_lost = machine.pager().stats().pages_lost;
  if (snapshot_metrics) {
    result.metrics = machine.metrics().Snapshot();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: two sizes instead of twelve, for CI smoke runs.
  // --faults=<rate>: per-operation transient disk error probability (default 0).
  bool quick = false;
  double fault_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_rate = std::strtod(argv[i] + 9, nullptr);
    }
  }
  const std::vector<uint64_t> sizes_mb = quick
                                             ? std::vector<uint64_t>{2, 8}
                                             : std::vector<uint64_t>{2,  4,  5,  6,  8,  10,
                                                                     12, 15, 20, 25, 30, 40};

  BenchReport report("fig3_thrashing", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("content", std::string("sparse_numeric"));
  report.Config("passes", uint64_t{2});
  report.Config("quick", quick);
  report.Config("fault_rate", fault_rate);

  std::printf("Figure 3: thrasher on a %llu MB machine (RZ57-class disk, LZRW1, 4 KB pages)\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  if (fault_rate > 0.0) {
    std::printf("fault injection: transient disk error rate %g per op\n", fault_rate);
  }
  std::printf("\n(a) average page access time (ms) and (b) speedup vs unmodified\n\n");
  std::printf("%8s %10s %10s %10s %10s %11s %11s %9s %6s\n", "size(MB)", "std_rw", "cc_rw",
              "std_ro", "cc_ro", "speedup_rw", "speedup_ro", "retries", "lost");

  // Fan the whole sweep (four machines per size) across the pool; the table is
  // formatted afterwards in sweep order, so stdout and JSON are byte-identical
  // to a single-threaded run.
  std::vector<std::function<RunResult()>> jobs;
  for (const uint64_t mb : sizes_mb) {
    const uint64_t bytes = mb * kMiB;
    // The last size's cc_rw machine contributes the metric snapshot: the most
    // memory-pressured configuration, so every subsystem has non-zero counters.
    const bool snapshot = mb == sizes_mb.back() && report.enabled();
    jobs.push_back([bytes, fault_rate] { return RunOne(bytes, false, true, fault_rate, false); });
    jobs.push_back(
        [bytes, fault_rate, snapshot] { return RunOne(bytes, true, true, fault_rate, snapshot); });
    jobs.push_back([bytes, fault_rate] { return RunOne(bytes, false, false, fault_rate, false); });
    jobs.push_back([bytes, fault_rate] { return RunOne(bytes, true, false, fault_rate, false); });
  }
  const std::vector<RunResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  std::string csv = "size_mb,std_rw_ms,cc_rw_ms,std_ro_ms,cc_ro_ms,retries,pages_lost\n";
  for (size_t s = 0; s < sizes_mb.size(); ++s) {
    const uint64_t mb = sizes_mb[s];
    const RunResult& std_rw = results[s * 4 + 0];
    const RunResult& cc_rw = results[s * 4 + 1];
    const RunResult& std_ro = results[s * 4 + 2];
    const RunResult& cc_ro = results[s * 4 + 3];
    if (!cc_rw.metrics.empty()) {
      report.MergeMetrics(cc_rw.metrics);
    }
    const uint64_t retries = std_rw.disk_retries + cc_rw.disk_retries + std_ro.disk_retries +
                             cc_ro.disk_retries;
    const uint64_t lost =
        std_rw.pages_lost + cc_rw.pages_lost + std_ro.pages_lost + cc_ro.pages_lost;
    std::printf("%8llu %10.3f %10.3f %10.3f %10.3f %11.2f %11.2f %9llu %6llu\n",
                static_cast<unsigned long long>(mb), std_rw.avg_access_ms, cc_rw.avg_access_ms,
                std_ro.avg_access_ms, cc_ro.avg_access_ms,
                cc_rw.avg_access_ms > 0 ? std_rw.avg_access_ms / cc_rw.avg_access_ms : 0.0,
                cc_ro.avg_access_ms > 0 ? std_ro.avg_access_ms / cc_ro.avg_access_ms : 0.0,
                static_cast<unsigned long long>(retries), static_cast<unsigned long long>(lost));
    std::fflush(stdout);
    char line[200];
    std::snprintf(line, sizeof(line), "%llu,%.3f,%.3f,%.3f,%.3f,%llu,%llu\n",
                  static_cast<unsigned long long>(mb), std_rw.avg_access_ms,
                  cc_rw.avg_access_ms, std_ro.avg_access_ms, cc_ro.avg_access_ms,
                  static_cast<unsigned long long>(retries),
                  static_cast<unsigned long long>(lost));
    csv += line;
    report.AddRow()
        .Set("size_mb", mb)
        .Set("std_rw_ms", std_rw.avg_access_ms)
        .Set("cc_rw_ms", cc_rw.avg_access_ms)
        .Set("std_ro_ms", std_ro.avg_access_ms)
        .Set("cc_ro_ms", cc_ro.avg_access_ms)
        .Set("speedup_rw",
             cc_rw.avg_access_ms > 0 ? std_rw.avg_access_ms / cc_rw.avg_access_ms : 0.0)
        .Set("speedup_ro",
             cc_ro.avg_access_ms > 0 ? std_ro.avg_access_ms / cc_ro.avg_access_ms : 0.0)
        .Set("disk_retries", retries)
        .Set("pages_lost", lost);
  }

  std::printf("\nCSV:\n%s", csv.c_str());
  return report.WriteIfEnabled() ? 0 : 1;
}
