// Ablation: the multi-tier compressed memory hierarchy (DRAM -> compressed
// DRAM -> compressed "SSD" -> disk) against the two degenerate ways to spend
// the same hardware.
//
// The split axis is the DRAM share of the compressed cache: how many pool
// frames the ccache ring may hold (the rest of DRAM serves the resident set),
// with a fixed compressed-RAM tier and a large compressed-SSD tier below it.
// The extremes bracket the design space:
//   all_dram   tiers disabled, uncapped ccache — the PR-9 machine, where
//              every compressed page the DRAM cannot hold pays a disk seek
//   all_ssd    a near-zero ccache cap, so virtually every compressed copy
//              lives behind the SSD cost model (~100 us) instead of DRAM
//
// Two workload axes:
//   thrash   fig3-style cyclic thrasher past the knee (working set whose
//            compressed image exceeds DRAM), clustered backend: the SSD tier
//            absorbs the overflow that all_dram ships to the seeking disk
//   kv       fig6 Zipfian KV service under memory pressure: skewed popularity
//            gives every level of the hierarchy a job — hot objects resident,
//            warm tail in compressed DRAM, cold tail on SSD, dregs on disk
//
// Headline metrics (validated by bench/check_bench_json.py): the KV frontier
// tier.frontier.best_ms / all_dram_ms / all_ssd_ms / best_split — an interior
// DRAM share must beat BOTH extremes, or the hierarchy earns nothing over a
// single-tier design.
//
//   --quick   one thrash size and the quick KV workload, for CI smoke runs
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/kv_server.h"
#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;
constexpr uint64_t kKvMemory = 5 * kMiB;
// The ~0% DRAM share: just enough ring to stage writebacks into the stack.
constexpr size_t kMinCcacheFrames = 16;

// DRAM shares of the pool granted to the ccache ring for the tiered cells.
// 0 marks the all-SSD extreme (kMinCcacheFrames); the all-DRAM extreme is a
// separate untiered cell.
const double kInteriorShares[] = {0.125, 0.25, 0.5};

struct Cell {
  std::string split;      // "all_dram", "all_ssd", or "dram=<share>"
  double share = -1.0;    // ccache share of the pool; -1 = untiered machine
};

MachineConfig TieredConfig(uint64_t memory_bytes, double share) {
  MachineConfig config = MachineConfig::WithCompressionCache(memory_bytes);
  if (share < 0.0) {
    return config;  // all_dram: today's untiered machine, uncapped ccache
  }
  config.tiers.enabled = true;
  TierSpec ram;
  ram.name = "ram";
  ram.medium = TierMedium::kCompressedRam;
  ram.capacity_bytes = 64 * kKiB;
  TierSpec ssd;
  ssd.name = "ssd";
  ssd.medium = TierMedium::kSsd;
  ssd.capacity_bytes = 16 * kMiB;  // roomy: the disk is for cold dregs only
  // Cheap bulk flash: an order of magnitude slower than compressed DRAM and
  // an order faster than the seeking disk — the middle of the hierarchy.
  ssd.ssd_latency = SimDuration::Micros(500);
  ssd.ssd_bandwidth_bytes_per_sec = 100e6;
  config.tiers.tiers = {ram, ssd};
  // Fault-service timescales are tens of milliseconds of virtual time; the
  // read-recency window must outlive them or nothing ever classifies hot.
  config.tiers.classifier.hot_window = SimDuration::Seconds(120);
  const size_t total_frames = memory_bytes / kPageSize;
  const size_t cap = static_cast<size_t>(share * static_cast<double>(total_frames));
  config.ccache_max_frames = cap < kMinCcacheFrames ? kMinCcacheFrames : cap;
  return config;
}

struct ThrashResult {
  double avg_access_ms = 0.0;
  uint64_t disk_reads = 0;
  uint64_t ssd_landings = 0;
  uint64_t violations = 0;
};

ThrashResult RunThrash(uint64_t address_space, double share) {
  MachineConfig config = TieredConfig(kUserMemory, share);
  Machine machine(config);
  ThrasherOptions options;
  options.address_space_bytes = address_space;
  options.write = true;
  options.passes = 2;
  options.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1
  Thrasher app(options);
  app.Run(machine);

  ThrashResult result;
  result.avg_access_ms = app.result().AvgAccessMillis();
  result.disk_reads = machine.disk().stats().read_ops;
  if (machine.tier_stack() != nullptr) {
    result.ssd_landings = machine.metrics().GaugeValue("tier.ssd.landings") +
                          machine.metrics().GaugeValue("tier.ssd.demotions_in");
  }
  result.violations = machine.RunAudit();
  return result;
}

struct KvResult {
  double mean_ms = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double ops_per_sec = 0.0;
  uint64_t requests = 0;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t faults = 0;
  uint64_t compressed_hits = 0;
  uint64_t disk_reads = 0;
  uint64_t validation_failures = 0;
  uint64_t violations = 0;
  std::vector<std::pair<std::string, double>> metrics;
};

KvResult RunKv(double share, bool quick, bool snapshot_metrics) {
  MachineConfig config = TieredConfig(kKvMemory, share);
  Machine machine(config);
  KvServerOptions o;
  // The heap (4096 x 2 KB slots = 8 MiB) stays pressured against the 5 MiB
  // machine in both modes; quick only shortens the request stream.
  o.workload.num_keys = 4096;
  o.workload.zipf_s = 0.99;
  o.workload.get_fraction = 0.9;
  // Slower than fig6's open loop: the cells must differ by per-fault service
  // cost (where the page waited), not by which machine saturates first.
  o.workload.mean_interarrival = SimDuration::Micros(2000);
  o.num_requests = quick ? 6000 : 24000;
  o.slot_bytes = 2048;
  // ~4:1 under LZRW1 (numeric records, like the paper's thrasher data): a
  // stolen resident frame buys four warm compressed pages, which is the
  // compression cache's case for existing at all.
  o.value_content = ContentClass::kSparseNumeric;
  KvServer server(o);
  server.Run(machine);

  const KvServerResult& r = server.result();
  KvResult cell;
  cell.mean_ms = r.latency.mean() / 1e6;
  cell.p50_ns = r.latency.Percentile(50);
  cell.p99_ns = r.latency.Percentile(99);
  cell.ops_per_sec = r.OpsPerSec();
  cell.requests = r.requests;
  cell.gets = r.gets;
  cell.sets = r.sets;
  cell.faults = machine.pager().stats().faults;
  cell.compressed_hits = machine.pager().stats().faults_from_ccache;
  cell.disk_reads = machine.disk().stats().read_ops;
  cell.validation_failures = r.validation_failures;
  cell.violations = machine.RunAudit();
  if (snapshot_metrics) {
    cell.metrics = machine.metrics().Snapshot();
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  std::vector<Cell> cells;
  cells.push_back({"all_dram", -1.0});
  cells.push_back({"all_ssd", 0.0});
  for (const double share : kInteriorShares) {
    char label[32];
    std::snprintf(label, sizeof(label), "dram=%g", share);
    cells.push_back({label, share});
  }

  const std::vector<uint64_t> thrash_sizes_mb =
      quick ? std::vector<uint64_t>{24} : std::vector<uint64_t>{16, 24, 32};

  BenchReport report("ablation_tier", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("kv_memory_mb", kKvMemory / kMiB);
  report.Config("ram_tier_kb", uint64_t{64});
  report.Config("ssd_tier_mb", uint64_t{16});
  report.Config("quick", quick);

  std::printf("tier ablation: DRAM share of the compressed cache, RAM(64 KB) + "
              "SSD(16 MB) stack over the clustered disk\n\n");

  std::vector<std::function<ThrashResult()>> thrash_jobs;
  for (const uint64_t mb : thrash_sizes_mb) {
    for (const Cell& cell : cells) {
      const uint64_t bytes = mb * kMiB;
      const double share = cell.share;
      thrash_jobs.push_back([bytes, share] { return RunThrash(bytes, share); });
    }
  }
  std::vector<std::function<KvResult()>> kv_jobs;
  for (size_t c = 0; c < cells.size(); ++c) {
    const double share = cells[c].share;
    // The widest interior cell contributes the metric snapshot, so the
    // tier.* counter families (and their conservation) land in the JSON.
    const bool snapshot = report.enabled() && share == kInteriorShares[1];
    kv_jobs.push_back([share, quick, snapshot] { return RunKv(share, quick, snapshot); });
  }
  const std::vector<ThrashResult> thrash =
      RunSweep(thrash_jobs, SweepThreadsFromArgs(argc, argv));
  const std::vector<KvResult> kv = RunSweep(kv_jobs, SweepThreadsFromArgs(argc, argv));

  uint64_t total_violations = 0;

  std::printf("thrash: cyclic working set on a %llu MB machine, avg ms/access\n",
              static_cast<unsigned long long>(kUserMemory / kMiB));
  std::printf("%10s", "size(MB)");
  for (const Cell& cell : cells) {
    std::printf(" %12s", cell.split.c_str());
  }
  std::printf("\n");
  size_t job = 0;
  for (const uint64_t mb : thrash_sizes_mb) {
    std::printf("%10llu", static_cast<unsigned long long>(mb));
    for (const Cell& cell : cells) {
      const ThrashResult& r = thrash[job++];
      total_violations += r.violations;
      std::printf(" %12.4f", r.avg_access_ms);
      report.AddRow()
          .Set("axis", std::string("thrash"))
          .Set("size_mb", mb)
          .Set("split", cell.split)
          .Set("avg_access_ms", r.avg_access_ms)
          .Set("disk_reads", r.disk_reads)
          .Set("ssd_landings", r.ssd_landings)
          .Set("violations", r.violations);
    }
    std::printf("\n");
  }

  std::printf("\nkv: Zipfian service on a %llu MB machine, mean request ms\n",
              static_cast<unsigned long long>(kKvMemory / kMiB));
  std::printf("%12s %10s %10s %10s %10s %10s %10s\n", "split", "mean_ms", "p99(us)",
              "kops/s", "faults", "cc_hits", "disk_rd");
  double all_dram_ms = 0.0;
  double all_ssd_ms = 0.0;
  double best_ms = 0.0;
  double best_split = -1.0;
  for (size_t c = 0; c < cells.size(); ++c) {
    const KvResult& r = kv[c];
    total_violations += r.violations;
    if (!r.metrics.empty()) {
      report.MergeMetrics(r.metrics);
    }
    if (cells[c].split == "all_dram") {
      all_dram_ms = r.mean_ms;
    } else if (cells[c].split == "all_ssd") {
      all_ssd_ms = r.mean_ms;
    } else if (best_split < 0.0 || r.mean_ms < best_ms) {
      best_ms = r.mean_ms;
      best_split = cells[c].share;
    }
    std::printf("%12s %10.4f %10.1f %10.2f %10llu %10llu %10llu\n", cells[c].split.c_str(),
                r.mean_ms, r.p99_ns / 1000.0, r.ops_per_sec / 1000.0,
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.compressed_hits),
                static_cast<unsigned long long>(r.disk_reads));
    report.AddRow()
        .Set("axis", std::string("kv"))
        .Set("split", cells[c].split)
        .Set("mean_ms", r.mean_ms)
        .Set("p50_ns", r.p50_ns)
        .Set("p99_ns", r.p99_ns)
        .Set("ops_per_sec", r.ops_per_sec)
        .Set("requests", r.requests)
        .Set("gets", r.gets)
        .Set("sets", r.sets)
        .Set("faults", r.faults)
        .Set("compressed_hits", r.compressed_hits)
        .Set("disk_reads", r.disk_reads)
        .Set("validation_failures", r.validation_failures)
        .Set("violations", r.violations);
  }

  // The crossover frontier the JSON validator gates on: some interior DRAM
  // share must beat both degenerate machines on the service workload.
  report.MergeMetrics({{"tier.frontier.best_ms", best_ms},
                       {"tier.frontier.all_dram_ms", all_dram_ms},
                       {"tier.frontier.all_ssd_ms", all_ssd_ms},
                       {"tier.frontier.best_split", best_split}});

  std::printf("\nfrontier: best interior dram=%g at %.4f ms vs all_dram %.4f ms, "
              "all_ssd %.4f ms\n",
              best_split, best_ms, all_dram_ms, all_ssd_ms);
  if (total_violations > 0) {
    std::printf("AUDIT VIOLATIONS: %llu\n",
                static_cast<unsigned long long>(total_violations));
    return 1;
  }
  const bool interior_wins = best_ms < all_dram_ms && best_ms < all_ssd_ms;
  if (!interior_wins) {
    std::printf("FRONTIER INVERTED: an extreme beat every interior split\n");
  }
  if (!report.WriteIfEnabled()) {
    return 1;
  }
  return interior_wins ? 0 : 1;
}
