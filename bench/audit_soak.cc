// Invariant-audit soak: runs the real applications (gold, sort, thrasher)
// over every compressed swap backend, with and without fault injection, while
// the cross-subsystem auditor fires every few faults. A healthy simulator
// finishes with zero violations everywhere; any non-zero count names the
// subsystem/invariant in the row and fails the process, so CI treats audit
// drift as a hard error rather than a statistics blip.
//
//   --quick          smaller workloads for CI smoke runs
//   --faults=<rate>  per-attempt transient disk error probability for the
//                    fault-injected half of the matrix (default 0.02)
//   --superblock     enable superblock frame packing across the whole grid,
//                    so the packing-specific audits (alignment, quantization,
//                    per-frame entry bounds) soak alongside the classic ones
//   --pipeline       enable async pipelining (write-behind depth 4, prefetch,
//                    fault batching) across the grid, so the in-flight-page
//                    and prefetch-buffer conservation audits soak too
//   --tiers          run every machine over a RAM + SSD tier stack, so the
//                    tier audits (residency coherence, per-tier occupancy and
//                    boundary flow conservation) soak alongside the rest
//   --json=<path>    machine-readable report (schema in DESIGN.md)
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/gold.h"
#include "apps/sort.h"
#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 6 * kMiB;
constexpr size_t kAuditInterval = 32;  // audit every 32 page faults

struct SoakResult {
  size_t audit_runs = 0;
  size_t violations = 0;
  std::string first_violation;  // "subsystem/invariant: detail" of the first hit
  std::vector<std::pair<std::string, double>> metrics;
};

SoakResult Finish(Machine& machine, bool snapshot_metrics) {
  machine.DrainPipeline();  // no-op when pipelining is off
  machine.RunAudit();       // final sweep on top of the periodic ones
  SoakResult result;
  result.audit_runs = machine.auditor().runs();
  result.violations = machine.auditor().total_violations();
  if (!machine.auditor().last_violations().empty()) {
    const auto& v = machine.auditor().last_violations().front();
    result.first_violation = v.subsystem + "/" + v.invariant + ": " + v.detail;
  }
  if (snapshot_metrics) {
    result.metrics = machine.metrics().Snapshot();
  }
  return result;
}

struct SoakMode {
  bool superblock = false;
  bool pipeline = false;
  bool tiers = false;
};

MachineConfig MakeConfig(CompressedSwapKind kind, double fault_rate, SoakMode mode) {
  MachineConfig config = MachineConfig::WithCompressionCache(kUserMemory);
  config.compressed_swap = kind;
  config.audit_interval = kAuditInterval;
  config.superblock_packing = mode.superblock;
  if (mode.pipeline) {
    config.pipeline.enabled = true;
    config.pipeline.write_behind_depth = 4;
    config.pipeline.prefetch = true;
    config.pipeline.fault_batch_window = 2;
  }
  if (mode.tiers) {
    config.tiers.enabled = true;
    TierSpec ram;
    ram.name = "ram";
    ram.medium = TierMedium::kCompressedRam;
    ram.capacity_bytes = 128 * kKiB;
    TierSpec ssd;
    ssd.name = "ssd";
    ssd.medium = TierMedium::kSsd;
    ssd.capacity_bytes = 1 * kMiB;
    config.tiers.tiers = {ram, ssd};
    config.tiers.classifier.hot_window = SimDuration::Seconds(120);
    // Cap the ccache ring so traffic actually flows through the stack.
    config.ccache_max_frames = 256;
  }
  if (fault_rate > 0.0) {
    config.fault_injection.enabled = true;
    config.fault_injection.seed = 1993;
    config.fault_injection.disk_read_error_rate = fault_rate;
    config.fault_injection.disk_write_error_rate = fault_rate;
  }
  return config;
}

// Violations are tallied (and reported below); aborting mid-sweep would
// discard the rest of the matrix.
void DisableAbort(Machine& machine) { machine.auditor().set_abort_on_violation(false); }

SoakResult RunGold(CompressedSwapKind kind, double fault_rate, bool quick, SoakMode mode,
                   bool snapshot) {
  Machine machine(MakeConfig(kind, fault_rate, mode));
  DisableAbort(machine);
  GoldOptions options;
  options.num_messages = quick ? 1024 : 4096;
  options.message_bytes = 2048;
  options.postings_bytes = quick ? 6 * kMiB : 12 * kMiB;
  options.num_queries = quick ? 256 : 1024;
  GoldIndex engine(machine, options);
  engine.PrepareCorpus();
  engine.RunCreate();
  engine.RunQueries();
  return Finish(machine, snapshot);
}

SoakResult RunSort(CompressedSwapKind kind, double fault_rate, bool quick, SoakMode mode,
                   bool snapshot) {
  Machine machine(MakeConfig(kind, fault_rate, mode));
  DisableAbort(machine);
  SortOptions options;
  options.variant = SortVariant::kRandom;
  options.text_bytes = quick ? 3 * kMiB : 6 * kMiB;
  // Injected unrecoverable faults may legitimately zero file blocks; the soak
  // cares about auditor invariants, not byte-exact app output.
  options.tolerate_data_loss = fault_rate > 0.0;
  TextSort app(options);
  app.Run(machine);
  return Finish(machine, snapshot);
}

SoakResult RunThrasher(CompressedSwapKind kind, double fault_rate, bool quick, SoakMode mode,
                       bool snapshot) {
  Machine machine(MakeConfig(kind, fault_rate, mode));
  DisableAbort(machine);
  ThrasherOptions options;
  options.address_space_bytes = quick ? 8 * kMiB : 16 * kMiB;
  options.write = true;
  options.passes = 2;
  Thrasher app(options);
  app.Run(machine);
  return Finish(machine, snapshot);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  SoakMode mode;
  double fault_rate = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--superblock") == 0) {
      mode.superblock = true;
    } else if (std::strcmp(argv[i], "--pipeline") == 0) {
      mode.pipeline = true;
    } else if (std::strcmp(argv[i], "--tiers") == 0) {
      mode.tiers = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      fault_rate = std::strtod(argv[i] + 9, nullptr);
    }
  }

  const std::vector<std::pair<std::string, CompressedSwapKind>> backends = {
      {"clustered", CompressedSwapKind::kClustered},
      {"fixed_compressed", CompressedSwapKind::kFixedOffset},
      {"lfs", CompressedSwapKind::kLfs},
  };
  struct Workload {
    std::string name;
    SoakResult (*run)(CompressedSwapKind, double, bool, SoakMode, bool);
  };
  const std::vector<Workload> workloads = {
      {"gold", RunGold}, {"sort", RunSort}, {"thrasher", RunThrasher}};

  BenchReport report("audit_soak", argc, argv);
  report.Config("user_memory_mb", kUserMemory / kMiB);
  report.Config("audit_interval", uint64_t{kAuditInterval});
  report.Config("fault_rate", fault_rate);
  report.Config("quick", quick);
  report.Config("superblock_packing", mode.superblock);
  report.Config("pipeline", mode.pipeline);
  report.Config("tiers", mode.tiers);

  std::printf("audit soak: %zu workloads x %zu backends x {clean, faults=%g}, "
              "audit every %zu faults%s%s%s\n\n",
              workloads.size(), backends.size(), fault_rate, kAuditInterval,
              mode.superblock ? ", superblock packing ON" : "",
              mode.pipeline ? ", pipelining ON" : "",
              mode.tiers ? ", RAM+SSD tier stack ON" : "");
  std::printf("%10s %18s %8s %10s %11s  %s\n", "workload", "backend", "faults",
              "audit_runs", "violations", "first_violation");

  std::vector<std::function<SoakResult()>> jobs;
  for (const Workload& w : workloads) {
    for (const auto& [bname, kind] : backends) {
      for (const double rate : {0.0, fault_rate}) {
        // One representative snapshot: the most stressed configuration.
        const bool snapshot = report.enabled() && w.name == workloads.back().name &&
                              bname == backends.back().first && rate > 0.0;
        const auto run = w.run;
        const auto k = kind;
        jobs.push_back([run, k, rate, quick, mode, snapshot] {
          return run(k, rate, quick, mode, snapshot);
        });
      }
    }
  }
  const std::vector<SoakResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  size_t total_violations = 0;
  size_t job = 0;
  for (const Workload& w : workloads) {
    for (const auto& [bname, kind] : backends) {
      for (const double rate : {0.0, fault_rate}) {
        const SoakResult& r = results[job++];
        total_violations += r.violations;
        if (!r.metrics.empty()) {
          report.MergeMetrics(r.metrics);
        }
        std::printf("%10s %18s %8g %10zu %11zu  %s\n", w.name.c_str(), bname.c_str(), rate,
                    r.audit_runs, r.violations, r.first_violation.c_str());
        report.AddRow()
            .Set("workload", w.name)
            .Set("backend", bname)
            .Set("fault_rate", rate)
            .Set("audit_runs", static_cast<uint64_t>(r.audit_runs))
            .Set("violations", static_cast<uint64_t>(r.violations));
      }
    }
  }

  // Top-level counter the JSON validator asserts on: any audit drift anywhere
  // in the matrix fails the artifact check as well as the process exit code.
  report.MergeMetrics({{"audit.violations", static_cast<double>(total_violations)}});

  std::printf("\ntotal violations: %zu\n", total_violations);
  const bool wrote = report.WriteIfEnabled();
  if (total_violations > 0) {
    return 1;
  }
  return wrote ? 0 : 1;
}
