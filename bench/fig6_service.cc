// Figure 6 (extension): the front-end service workload — a KV object cache
// whose heap lives on simulated VM, driven by seeded open-loop Zipfian
// traffic (skewed popularity, 90/10 get/set, log-normal values, a diurnal
// ramp, hot-key flash crowds). This reframes the paper's thrashing curves as
// the production question: what request tail latency does a given memory
// pressure buy, and does the compression cache move the SLO?
//
// Axes: all three compressed backends x {sync, pipelined} x a memory sweep,
// with the object heap held fixed — shrinking memory raises the paging rate
// and the p99/p999 follow. Per-request latency is completion minus open-loop
// arrival (queueing included), from the kv.request_ns pow2 histogram.
//
// Headline metrics (validated by bench/check_bench_json.py): matched
// clustered cells at the knee of the pressure curve, service.sync_p99_ns vs
// service.pipelined_p99_ns, with pipelined no worse; per-row p50<=p99<=p999
// and request conservation.
//
//   --quick   smaller heap/request count and a 2-point sweep, for CI smoke
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "apps/kv_server.h"
#include "bench_json.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

struct CellResult {
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double mean_ns = 0.0;
  double max_ns = 0.0;
  double ops_per_sec = 0.0;
  double elapsed_ms = 0.0;
  uint64_t requests = 0;
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t flash_requests = 0;
  uint64_t validation_failures = 0;
  uint64_t faults = 0;
  uint64_t compressed_hits = 0;
  uint64_t disk_reads = 0;
  // Representative cell only.
  std::vector<std::pair<std::string, double>> metrics;
};

KvServerOptions ServiceOptions(bool quick) {
  KvServerOptions o;
  o.workload.num_keys = quick ? 2048 : 4096;  // x 2 KB slots: 4 / 8 MiB heap
  o.workload.zipf_s = 0.99;
  o.workload.get_fraction = 0.9;
  o.workload.mean_interarrival = SimDuration::Micros(1000);
  o.num_requests = quick ? 6000 : 24000;
  o.workload.diurnal_period_requests = o.num_requests / 2;  // two day cycles
  o.workload.diurnal_amplitude = 0.5;
  o.workload.flash_period_requests = o.num_requests / 4;
  o.workload.flash_len_requests = o.num_requests / 40;
  o.slot_bytes = 2048;
  o.value_content = ContentClass::kText;  // ~2:1 under LZRW1
  return o;
}

PipelineOptions Piped() {
  PipelineOptions p;
  p.enabled = true;
  p.write_behind_depth = 4;
  p.prefetch = true;
  p.prefetch_buffer_pages = 8;
  p.prefetch_per_fault = 1;
  p.fault_batch_window = 2;
  return p;
}

CellResult RunCell(CompressedSwapKind kind, bool pipelined, uint64_t memory_bytes,
                   bool quick, bool snapshot_metrics) {
  MachineConfig config = MachineConfig::WithCompressionCache(memory_bytes);
  config.compressed_swap = kind;
  if (pipelined) {
    config.pipeline = Piped();
  }
  Machine machine(config);
  KvServer server(ServiceOptions(quick));
  server.Run(machine);
  // Quiesce before reading stats so the prefetch/write-behind conservation
  // equations close over the published counters.
  machine.DrainPipeline();

  const KvServerResult& r = server.result();
  CellResult cell;
  cell.p50_ns = r.latency.Percentile(50);
  cell.p99_ns = r.latency.Percentile(99);
  cell.p999_ns = r.latency.Percentile(99.9);
  cell.mean_ns = r.latency.mean();
  cell.max_ns = r.latency.max();
  cell.ops_per_sec = r.OpsPerSec();
  cell.elapsed_ms = r.elapsed.millis();
  cell.requests = r.requests;
  cell.gets = r.gets;
  cell.sets = r.sets;
  cell.flash_requests = r.flash_requests;
  cell.validation_failures = r.validation_failures;
  cell.faults = machine.pager().stats().faults;
  cell.compressed_hits = machine.pager().stats().faults_from_ccache;
  cell.disk_reads = machine.disk().stats().read_ops;
  if (snapshot_metrics) {
    cell.metrics = machine.metrics().Snapshot();
  }
  return cell;
}

const char* BackendName(CompressedSwapKind kind) {
  switch (kind) {
    case CompressedSwapKind::kClustered:
      return "clustered";
    case CompressedSwapKind::kFixedOffset:
      return "fixed_compressed";
    case CompressedSwapKind::kLfs:
      return "lfs";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  const std::vector<uint64_t> mem_mb =
      quick ? std::vector<uint64_t>{4, 6} : std::vector<uint64_t>{4, 6, 8, 12};
  const std::vector<CompressedSwapKind> backends{CompressedSwapKind::kClustered,
                                                 CompressedSwapKind::kFixedOffset,
                                                 CompressedSwapKind::kLfs};
  const KvServerOptions wl = ServiceOptions(quick);

  BenchReport report("fig6_service", argc, argv);
  report.Config("num_keys", wl.workload.num_keys);
  report.Config("slot_bytes", static_cast<uint64_t>(wl.slot_bytes));
  report.Config("num_requests", wl.num_requests);
  report.Config("zipf_s", wl.workload.zipf_s);
  report.Config("get_fraction", wl.workload.get_fraction);
  report.Config("mean_interarrival_us",
                static_cast<double>(wl.workload.mean_interarrival.nanos()) / 1000.0);
  report.Config("quick", quick);

  std::printf("Figure 6: KV service under Zipfian load (s=%.2f, %llu keys x %u B slots, "
              "%llu requests, RZ57-class disk)\n\n",
              wl.workload.zipf_s, static_cast<unsigned long long>(wl.workload.num_keys),
              wl.slot_bytes, static_cast<unsigned long long>(wl.num_requests));
  std::printf("%18s %6s %8s %10s %10s %10s %10s %10s %8s\n", "backend", "mode", "mem(MB)",
              "p50(us)", "p99(us)", "p999(us)", "kops/s", "faults", "cc_hits");

  // Headline / representative cell: the clustered backend at the knee of the
  // pressure curve — stressed enough to page hard, not so starved that the
  // open loop collapses into pure queueing (where prefetch's extra disk reads
  // can only hurt; see EXPERIMENTS.md). In quick mode the sweep is short
  // enough that its smallest point is the knee.
  const uint64_t headline_mb = quick ? mem_mb.front() : mem_mb[1];

  // The snapshot comes from the headline pipelined cell, so kv.*, pipeline.*,
  // and prefetch.* all land in the JSON.
  std::vector<std::function<CellResult()>> jobs;
  for (const CompressedSwapKind kind : backends) {
    for (const bool pipelined : {false, true}) {
      for (const uint64_t mb : mem_mb) {
        const uint64_t bytes = mb * kMiB;
        const bool snapshot = report.enabled() && kind == CompressedSwapKind::kClustered &&
                              pipelined && mb == headline_mb;
        jobs.push_back([kind, pipelined, bytes, quick, snapshot] {
          return RunCell(kind, pipelined, bytes, quick, snapshot);
        });
      }
    }
  }
  const std::vector<CellResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  double headline_sync_p99 = 0.0;
  double headline_pipelined_p99 = 0.0;
  double headline_ops = 0.0;
  size_t j = 0;
  for (const CompressedSwapKind kind : backends) {
    for (const bool pipelined : {false, true}) {
      for (const uint64_t mb : mem_mb) {
        const CellResult& cell = results[j++];
        if (!cell.metrics.empty()) {
          report.MergeMetrics(cell.metrics);
        }
        if (kind == CompressedSwapKind::kClustered && mb == headline_mb) {
          (pipelined ? headline_pipelined_p99 : headline_sync_p99) = cell.p99_ns;
          if (pipelined) {
            headline_ops = cell.ops_per_sec;
          }
        }
        std::printf("%18s %6s %8llu %10.1f %10.1f %10.1f %10.2f %10llu %8llu\n",
                    BackendName(kind), pipelined ? "pipe" : "sync",
                    static_cast<unsigned long long>(mb), cell.p50_ns / 1000.0,
                    cell.p99_ns / 1000.0, cell.p999_ns / 1000.0, cell.ops_per_sec / 1000.0,
                    static_cast<unsigned long long>(cell.faults),
                    static_cast<unsigned long long>(cell.compressed_hits));
        std::fflush(stdout);

        report.AddRow()
            .Set("backend", std::string(BackendName(kind)))
            .Set("mode", std::string(pipelined ? "pipelined" : "sync"))
            .Set("memory_mb", mb)
            .Set("requests", cell.requests)
            .Set("gets", cell.gets)
            .Set("sets", cell.sets)
            .Set("flash_requests", cell.flash_requests)
            .Set("p50_ns", cell.p50_ns)
            .Set("p99_ns", cell.p99_ns)
            .Set("p999_ns", cell.p999_ns)
            .Set("mean_ns", cell.mean_ns)
            .Set("max_ns", cell.max_ns)
            .Set("ops_per_sec", cell.ops_per_sec)
            .Set("elapsed_ms", cell.elapsed_ms)
            .Set("validation_failures", cell.validation_failures)
            .Set("faults", cell.faults)
            .Set("compressed_hits", cell.compressed_hits)
            .Set("disk_reads", cell.disk_reads);
      }
    }
  }

  // Headline gate: matched clustered knee cells, pipelined no worse.
  report.MergeMetrics({{"service.sync_p99_ns", headline_sync_p99},
                       {"service.pipelined_p99_ns", headline_pipelined_p99},
                       {"service.pipelined_ops_per_sec", headline_ops}});

  std::printf("\nThroughput-vs-pressure and the full tail are in the JSON report "
              "(p50/p99/p999 per backend x mode x memory).\n");
  return report.WriteIfEnabled() ? 0 : 1;
}
