// Figure 5 (paper section 5.3): multiprogrammed workload mixes.
//
// The paper's multiprogramming experiments time-share one machine among
// several programs whose working sets compete for the same frames: the
// compression cache's benefit depends on the *mix*, not just the program. This
// bench runs three canonical mixes under the deterministic round-robin
// scheduler, on the unmodified ("std") and compression-cache ("cc") systems,
// across a memory sweep:
//
//   gold_sort    — gold index engine + sort partial (both paper section 5.2);
//   gold_thrash  — gold + a thrasher covering most of memory (worst neighbor);
//   three_way    — gold + sort + thrasher.
//
// Expected shape: at generous memory (working sets fit) cc ~= std; as memory
// shrinks the mixes start paging and cc pulls ahead wherever the victims'
// pages compress well — the thrasher's ~4:1 pages make gold_thrash the
// clearest win, while gold's poorly-compressing index tempers gold_sort.
//
// The JSON report carries mix.* metrics (virtual elapsed time, per-process
// charged time and faults) plus the representative cell's full unprefixed
// metric snapshot, whose per-process proc.* counters must sum exactly to the
// machine's vm.* totals (validated by bench/check_bench_json.py).
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/gold.h"
#include "apps/sort.h"
#include "apps/thrasher.h"
#include "bench_json.h"
#include "core/machine.h"
#include "proc/scheduler.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

enum class Mix { kGoldSort, kGoldThrash, kThreeWay };

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kGoldSort:
      return "gold_sort";
    case Mix::kGoldThrash:
      return "gold_thrash";
    case Mix::kThreeWay:
      return "three_way";
  }
  return "?";
}

struct ProcOutcome {
  std::string name;
  double run_ms = 0.0;
  uint64_t faults = 0;
};

struct CellResult {
  double elapsed_s = 0.0;
  uint64_t faults = 0;
  uint64_t compressed_hits = 0;
  uint64_t swap_faults = 0;
  uint64_t disk_reads = 0;
  std::vector<ProcOutcome> procs;
  std::string completion;  // names in finish order, comma-separated
  // Representative cell only: full unprefixed snapshot + hand-built mix.*.
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<std::string, double>> mix_metrics;
};

GoldOptions BenchGoldOptions(bool quick) {
  GoldOptions o;
  o.num_messages = quick ? 512 : 1024;
  o.message_bytes = 1024;
  o.dictionary_words = 8 * 1024;
  o.term_table_slots = 1 << 14;
  o.postings_bytes = quick ? 2 * kMiB : 4 * kMiB;
  o.num_queries = quick ? 256 : 512;
  return o;
}

SortOptions BenchSortOptions(bool quick) {
  SortOptions o;
  o.variant = SortVariant::kPartial;
  o.text_bytes = quick ? 512 * kKiB : 1 * kMiB;
  o.dictionary_words = 8 * 1024;
  return o;
}

ThrasherOptions BenchThrasherOptions(bool quick) {
  ThrasherOptions o;
  o.address_space_bytes = quick ? 3 * kMiB : 4 * kMiB;
  o.write = true;
  o.passes = 2;
  o.content = ContentClass::kSparseNumeric;  // ~4:1 under LZRW1
  return o;
}

CellResult RunCell(Mix mix, uint64_t memory_bytes, bool use_ccache, bool quick,
                   bool snapshot_metrics) {
  MachineConfig config = use_ccache ? MachineConfig::WithCompressionCache(memory_bytes)
                                    : MachineConfig::Unmodified(memory_bytes);
  Machine machine(config);
  Scheduler sched(machine);

  sched.Spawn("gold", std::make_unique<GoldApp>(BenchGoldOptions(quick)));
  if (mix == Mix::kGoldSort || mix == Mix::kThreeWay) {
    sched.Spawn("sorter", std::make_unique<TextSort>(BenchSortOptions(quick)));
  }
  if (mix == Mix::kGoldThrash || mix == Mix::kThreeWay) {
    sched.Spawn("thrash", std::make_unique<Thrasher>(BenchThrasherOptions(quick)));
  }

  const SimTime start = machine.clock().Now();
  sched.RunToCompletion();
  const SimDuration elapsed = machine.clock().Now() - start;

  CellResult cell;
  cell.elapsed_s = elapsed.seconds();
  for (uint32_t pid = 1; pid <= sched.num_processes(); ++pid) {
    const Process& proc = sched.process(pid);
    const ProcStats& s = proc.stats();
    cell.procs.push_back({proc.name(), s.run_time.millis(), s.faults});
    cell.faults += s.faults;
    cell.compressed_hits += s.compressed_hits;
    cell.swap_faults += s.swap_faults;
    cell.disk_reads += s.disk_reads;
  }
  for (const uint32_t pid : sched.completion_order()) {
    cell.completion += (cell.completion.empty() ? "" : ",");
    cell.completion += sched.process(pid).name();
  }
  if (snapshot_metrics) {
    cell.metrics = machine.metrics().Snapshot();
    cell.mix_metrics.emplace_back("mix.elapsed_ns",
                                  static_cast<double>(elapsed.nanos()));
    cell.mix_metrics.emplace_back("mix.processes",
                                  static_cast<double>(sched.num_processes()));
    for (uint32_t pid = 1; pid <= sched.num_processes(); ++pid) {
      const Process& proc = sched.process(pid);
      cell.mix_metrics.emplace_back("mix." + proc.name() + ".run_ns",
                                    static_cast<double>(proc.stats().run_time.nanos()));
      cell.mix_metrics.emplace_back("mix." + proc.name() + ".faults",
                                    static_cast<double>(proc.stats().faults));
    }
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  // --quick: one memory size and smaller workloads, for CI smoke runs.
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const std::vector<uint64_t> mem_mb =
      quick ? std::vector<uint64_t>{4} : std::vector<uint64_t>{4, 6, 8, 14};
  const std::vector<Mix> mixes{Mix::kGoldSort, Mix::kGoldThrash, Mix::kThreeWay};

  BenchReport report("fig5_multiprogramming", argc, argv);
  report.Config("quantum_ms", uint64_t{1});
  report.Config("quick", quick);
  report.Config("scheduler", std::string("round_robin"));

  std::printf("Figure 5: multiprogrammed mixes (round-robin, 1 ms quantum, RZ57-class disk)\n\n");
  std::printf("%12s %8s %10s %10s %8s %8s %12s %10s\n", "mix", "mem(MB)", "std_s", "cc_s",
              "speedup", "faults", "ccache_hits", "disk_reads");

  // One std and one cc machine per (mix, memory) point, fanned across the
  // pool; the representative metric snapshot comes from the cc three-way mix
  // at the smallest memory — the most pressured cell, so every per-process
  // counter is exercised.
  std::vector<std::function<CellResult()>> jobs;
  for (const Mix mix : mixes) {
    for (const uint64_t mb : mem_mb) {
      const uint64_t bytes = mb * kMiB;
      const bool snapshot = report.enabled() && mix == Mix::kThreeWay && mb == mem_mb.front();
      jobs.push_back([mix, bytes, quick] { return RunCell(mix, bytes, false, quick, false); });
      jobs.push_back(
          [mix, bytes, quick, snapshot] { return RunCell(mix, bytes, true, quick, snapshot); });
    }
  }
  const std::vector<CellResult> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  size_t j = 0;
  for (const Mix mix : mixes) {
    for (const uint64_t mb : mem_mb) {
      const CellResult& std_cell = results[j++];
      const CellResult& cc_cell = results[j++];
      if (!cc_cell.metrics.empty()) {
        report.MergeMetrics(cc_cell.metrics);
        report.MergeMetrics(cc_cell.mix_metrics);
      }
      const double speedup =
          cc_cell.elapsed_s > 0 ? std_cell.elapsed_s / cc_cell.elapsed_s : 0.0;
      std::printf("%12s %8llu %10.2f %10.2f %8.2f %8llu %12llu %10llu\n", MixName(mix),
                  static_cast<unsigned long long>(mb), std_cell.elapsed_s, cc_cell.elapsed_s,
                  speedup, static_cast<unsigned long long>(cc_cell.faults),
                  static_cast<unsigned long long>(cc_cell.compressed_hits),
                  static_cast<unsigned long long>(cc_cell.disk_reads));
      std::fflush(stdout);

      BenchReport::Row& row = report.AddRow();
      row.Set("mix", std::string(MixName(mix)))
          .Set("memory_mb", mb)
          .Set("std_s", std_cell.elapsed_s)
          .Set("cc_s", cc_cell.elapsed_s)
          .Set("speedup", speedup)
          .Set("cc_faults", cc_cell.faults)
          .Set("cc_compressed_hits", cc_cell.compressed_hits)
          .Set("cc_swap_faults", cc_cell.swap_faults)
          .Set("cc_disk_reads", cc_cell.disk_reads)
          .Set("cc_completion", cc_cell.completion);
      for (const ProcOutcome& proc : cc_cell.procs) {
        row.Set("cc_" + proc.name + "_run_ms", proc.run_ms)
            .Set("cc_" + proc.name + "_faults", proc.faults);
      }
    }
  }

  std::printf("\nPer-process charged time is in the JSON report (cc_<name>_run_ms).\n");
  return report.WriteIfEnabled() ? 0 : 1;
}
