// Ablation: the backing-store interface (paper section 4.3).
//
// The paper weighs several designs for moving variable-sized compressed pages to
// disk and lands on 1 KB fragments written 32 KB at a time, with block spanning
// parameterized. This benchmark measures, on the beyond-memory thrashing regime
// (where backing-store traffic dominates):
//   * clustered write batch size (per-fault synchronous writes vs 8/32/128 KB);
//   * block spanning allowed vs disallowed;
//   * the file system's partial-block write pathology vs the "modify the file
//     system" alternative (no read-modify-write);
//   * coresident insertion (the free pages that arrive in a block read) on vs off.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/thrasher.h"
#include "core/machine.h"
#include "sweep_runner.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

SimDuration Run(MachineConfig config) {
  Machine machine(std::move(config));
  ThrasherOptions options;
  options.address_space_bytes = 24 * kMiB;  // far beyond memory even compressed
  options.write = true;
  options.passes = 1;
  options.content = ContentClass::kSparseNumeric;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

MachineConfig Base() { return MachineConfig::WithCompressionCache(kUserMemory); }

}  // namespace

int main(int argc, char** argv) {
  std::printf("Ablation: backing-store interface (4 MB machine, 24 MB rw working set)\n\n");

  // Every variant is one independent machine; collect them all, fan out once,
  // and print from the results in variant order.
  std::vector<std::string> labels;
  std::vector<std::function<SimDuration()>> jobs;
  const auto add = [&](std::string label, MachineConfig config) {
    labels.push_back(std::move(label));
    jobs.push_back([config = std::move(config)] { return Run(config); });
  };

  for (const uint32_t kb : {4u, 8u, 32u, 128u}) {
    MachineConfig config = Base();
    config.write_batch_bytes = kb * 1024;
    char label[32];
    std::snprintf(label, sizeof(label), "  %4u KB: ", kb);
    add(label, std::move(config));
  }
  for (const bool spanning : {true, false}) {
    MachineConfig config = Base();
    config.allow_block_spanning = spanning;
    add(spanning ? "  allowed:   " : "  forbidden: ", std::move(config));
  }
  {
    MachineConfig config = Base();
    add("  clustered fragments:               ", std::move(config));
  }
  {
    MachineConfig config = Base();
    config.compressed_swap = CompressedSwapKind::kFixedOffset;
    add("  fixed offsets, Sprite fs (RMW):    ", std::move(config));
  }
  {
    MachineConfig config = Base();
    config.compressed_swap = CompressedSwapKind::kFixedOffset;
    config.fs_options.allow_partial_block_write = true;
    add("  fixed offsets, modified fs:        ", std::move(config));
  }
  {
    // Paper 4.3/5.1: paging into an LFS-style log gets the big sequential
    // writes but pays segment-cleaning copies and buffer memory.
    MachineConfig config = Base();
    config.compressed_swap = CompressedSwapKind::kLfs;
    add("  LFS-style log:                     ", std::move(config));
  }
  for (const bool insert : {true, false}) {
    MachineConfig config = Base();
    config.insert_coresidents = insert;
    add(insert ? "  on:        " : "  off:       ", std::move(config));
  }

  const std::vector<SimDuration> results = RunSweep(jobs, SweepThreadsFromArgs(argc, argv));

  size_t i = 0;
  const auto print_next = [&] {
    std::printf("%s%s\n", labels[i].c_str(), results[i].ToMinSec().c_str());
    ++i;
  };
  std::printf("write batch size (clustered fragments written per operation):\n");
  for (int n = 0; n < 4; ++n) {
    print_next();
  }
  std::printf("\nblock spanning of compressed pages:\n");
  for (int n = 0; n < 2; ++n) {
    print_next();
  }
  std::printf(
      "\nswap layout (paper section 4.3's design alternatives):\n"
      "  clustered fragments is the paper's design; fixed-offset transfers just\n"
      "  the compressed bytes at the page's old location, which the Sprite file\n"
      "  system turns into a 4 KB read + 4 KB write per page (RMW); the\n"
      "  'modified fs' variant writes partial blocks without the read.\n");
  for (int n = 0; n < 4; ++n) {
    print_next();
  }
  std::printf("\ncoresident insertion (free pages in a fetched block):\n");
  for (int n = 0; n < 2; ++n) {
    print_next();
  }
  return 0;
}
