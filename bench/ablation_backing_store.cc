// Ablation: the backing-store interface (paper section 4.3).
//
// The paper weighs several designs for moving variable-sized compressed pages to
// disk and lands on 1 KB fragments written 32 KB at a time, with block spanning
// parameterized. This benchmark measures, on the beyond-memory thrashing regime
// (where backing-store traffic dominates):
//   * clustered write batch size (per-fault synchronous writes vs 8/32/128 KB);
//   * block spanning allowed vs disallowed;
//   * the file system's partial-block write pathology vs the "modify the file
//     system" alternative (no read-modify-write);
//   * coresident insertion (the free pages that arrive in a block read) on vs off.
#include <cstdio>

#include "apps/thrasher.h"
#include "core/machine.h"

using namespace compcache;

namespace {

constexpr uint64_t kUserMemory = 4 * kMiB;

SimDuration Run(MachineConfig config) {
  Machine machine(std::move(config));
  ThrasherOptions options;
  options.address_space_bytes = 24 * kMiB;  // far beyond memory even compressed
  options.write = true;
  options.passes = 1;
  options.content = ContentClass::kSparseNumeric;
  Thrasher app(options);
  app.Run(machine);
  return app.result().elapsed;
}

MachineConfig Base() { return MachineConfig::WithCompressionCache(kUserMemory); }

}  // namespace

int main() {
  std::printf("Ablation: backing-store interface (4 MB machine, 24 MB rw working set)\n\n");

  {
    std::printf("write batch size (clustered fragments written per operation):\n");
    for (const uint32_t kb : {4u, 8u, 32u, 128u}) {
      MachineConfig config = Base();
      config.write_batch_bytes = kb * 1024;
      std::printf("  %4u KB: %s\n", kb, Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
  }

  {
    std::printf("\nblock spanning of compressed pages:\n");
    for (const bool spanning : {true, false}) {
      MachineConfig config = Base();
      config.allow_block_spanning = spanning;
      std::printf("  %-10s %s\n", spanning ? "allowed:" : "forbidden:",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
  }

  {
    std::printf(
        "\nswap layout (paper section 4.3's design alternatives):\n"
        "  clustered fragments is the paper's design; fixed-offset transfers just\n"
        "  the compressed bytes at the page's old location, which the Sprite file\n"
        "  system turns into a 4 KB read + 4 KB write per page (RMW); the\n"
        "  'modified fs' variant writes partial blocks without the read.\n");
    {
      MachineConfig config = Base();
      std::printf("  %-34s %s\n", "clustered fragments:",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
    {
      MachineConfig config = Base();
      config.compressed_swap = CompressedSwapKind::kFixedOffset;
      std::printf("  %-34s %s\n", "fixed offsets, Sprite fs (RMW):",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
    {
      MachineConfig config = Base();
      config.compressed_swap = CompressedSwapKind::kFixedOffset;
      config.fs_options.allow_partial_block_write = true;
      std::printf("  %-34s %s\n", "fixed offsets, modified fs:",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
    {
      // Paper 4.3/5.1: paging into an LFS-style log gets the big sequential
      // writes but pays segment-cleaning copies and buffer memory.
      MachineConfig config = Base();
      config.compressed_swap = CompressedSwapKind::kLfs;
      std::printf("  %-34s %s\n", "LFS-style log:",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
  }

  {
    std::printf("\ncoresident insertion (free pages in a fetched block):\n");
    for (const bool insert : {true, false}) {
      MachineConfig config = Base();
      config.insert_coresidents = insert;
      std::printf("  %-10s %s\n", insert ? "on:" : "off:",
                  Run(std::move(config)).ToMinSec().c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
