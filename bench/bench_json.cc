#include "bench_json.h"

#include <cstdio>
#include <fstream>

#include "util/json.h"

namespace compcache {

namespace {
constexpr std::string_view kJsonFlag = "--json=";
}  // namespace

BenchReport::BenchReport(std::string bench_name, int argc, char** argv)
    : name_(std::move(bench_name)) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, kJsonFlag.size()) == kJsonFlag) {
      path_ = std::string(arg.substr(kJsonFlag.size()));
    }
  }
}

BenchReport::Row& BenchReport::Row::Set(std::string key, double value) {
  fields_.push_back(Field{std::move(key), false, {}, value});
  return *this;
}

BenchReport::Row& BenchReport::Row::Set(std::string key, std::string value) {
  fields_.push_back(Field{std::move(key), true, std::move(value), 0});
  return *this;
}

void BenchReport::Config(std::string key, double value) {
  config_.push_back(ConfigEntry{std::move(key), ConfigEntry::Kind::kNumber, {}, value, false});
}

void BenchReport::Config(std::string key, uint64_t value) {
  Config(std::move(key), static_cast<double>(value));
}

void BenchReport::Config(std::string key, std::string value) {
  config_.push_back(
      ConfigEntry{std::move(key), ConfigEntry::Kind::kString, std::move(value), 0, false});
}

void BenchReport::Config(std::string key, bool value) {
  config_.push_back(ConfigEntry{std::move(key), ConfigEntry::Kind::kBool, {}, 0, value});
}

BenchReport::Row& BenchReport::AddRow() { return rows_.emplace_back(); }

void BenchReport::MergeMetrics(const MetricRegistry& registry, const std::string& prefix) {
  MergeMetrics(registry.Snapshot(), prefix);
}

void BenchReport::MergeMetrics(const std::vector<std::pair<std::string, double>>& snapshot,
                               const std::string& prefix) {
  for (const auto& [name, value] : snapshot) {
    metrics_[prefix + name] = value;
  }
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Kv("bench", std::string_view(name_));
  w.Kv("schema_version", uint64_t{1});

  w.Key("config").BeginObject();
  for (const ConfigEntry& e : config_) {
    switch (e.kind) {
      case ConfigEntry::Kind::kNumber:
        w.Kv(e.key, e.num);
        break;
      case ConfigEntry::Kind::kString:
        w.Kv(e.key, std::string_view(e.str));
        break;
      case ConfigEntry::Kind::kBool:
        w.Kv(e.key, e.boolean);
        break;
    }
  }
  w.EndObject();

  w.Key("results").BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject();
    for (const Row::Field& f : row.fields_) {
      if (f.is_string) {
        w.Kv(f.key, std::string_view(f.str));
      } else {
        w.Kv(f.key, f.num);
      }
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("metrics").BeginObject();
  for (const auto& [name, value] : metrics_) {
    w.Kv(name, value);
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

bool BenchReport::WriteIfEnabled() const {
  if (!enabled()) {
    return true;
  }
  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path_.c_str());
    return false;
  }
  out << ToJson() << "\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "bench_json: write to %s failed\n", path_.c_str());
    return false;
  }
  std::printf("wrote JSON report: %s\n", path_.c_str());
  return true;
}

}  // namespace compcache
