// Figure 1(b): "Keeping compressed pages in memory" — speedup of mean memory
// reference time for an application that sequentially accesses twice as many
// pages as fit in memory, reading and writing one word per page.
//
// Two parts:
//   1. the analytic grid (same axes and regions as panel (a), plus the paper's
//      "sharp leap in speedup when all pages fit in memory");
//   2. a cross-check of the analytic model against the actual simulator: a tiny
//      machine runs the 2x-memory cyclic workload at two compressibility points
//      (fits / does not fit) and the measured speedup must land on the same side
//      of the leap.
#include <cstdio>

#include "apps/thrasher.h"
#include "core/machine.h"
#include "model/analytic.h"

using namespace compcache;

namespace {

double MeasuredSpeedup(ContentClass content) {
  ThrasherOptions options;
  options.address_space_bytes = 4 * kMiB;  // 2x the machine's memory
  options.write = true;
  options.passes = 2;
  options.content = content;

  Machine std_machine(MachineConfig::Unmodified(2 * kMiB));
  Thrasher std_app(options);
  std_app.Run(std_machine);

  Machine cc_machine(MachineConfig::WithCompressionCache(2 * kMiB));
  Thrasher cc_app(options);
  cc_app.Run(cc_machine);

  return std_app.result().AvgAccessMillis() / cc_app.result().AvgAccessMillis();
}

}  // namespace

int main() {
  const double ratios[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5,
                           0.6,  0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0};
  const double speeds[] = {64, 32, 16, 8, 4, 2, 1, 0.5};

  std::printf("Figure 1(b): mean memory reference time speedup, compressed pages in memory\n");
  std::printf("(workload: sequential access to 2x memory, one word per page, read+write;\n");
  std::printf(" '#' >6x, '+' 1-6x, '-' <1x; note the sharp leap at ratio 0.5 where the\n");
  std::printf(" compressed working set stops fitting in memory)\n\n");

  std::printf("speed\\ratio");
  for (const double r : ratios) {
    std::printf("%5.2f", r);
  }
  std::printf("\n");
  for (const double s : speeds) {
    std::printf("%10.1fx", s);
    for (const double r : ratios) {
      const double speedup = MemoryReferenceSpeedup(r, s);
      std::printf("    %c", speedup > 6.0 ? '#' : speedup >= 1.0 ? '+' : '-');
    }
    std::printf("\n");
  }

  std::printf("\nCSV: speed,ratio,speedup\n");
  for (const double s : speeds) {
    for (const double r : ratios) {
      std::printf("%g,%g,%.3f\n", s, r, MemoryReferenceSpeedup(r, s));
    }
  }

  std::printf("\nSimulator cross-check (full machine, not the closed form):\n");
  const double fits = MeasuredSpeedup(ContentClass::kSparseNumeric);  // ~4:1, fits
  const double spills = MeasuredSpeedup(ContentClass::kRandom);       // 1:1, spills
  std::printf("  compressible 2x-memory workload (fits compressed):  %.2fx %s\n", fits,
              fits > 1.5 ? "(speedup, as modeled)" : "(UNEXPECTED)");
  std::printf("  incompressible 2x-memory workload (spills to disk): %.2fx %s\n", spills,
              spills < 1.2 ? "(no win, as modeled)" : "(UNEXPECTED)");
  return 0;
}
