// Figure 1(a): "Performance of compressing pages, modeled analytically ...
// Transferring compressed pages to backing store." Speedup of paging bandwidth as
// a function of the compression ratio (fraction of bytes left) and the speed of
// compression relative to I/O; decompression twice as fast as compression.
//
// Output: the paper's three regions rendered as an ASCII grid ('#' = speedup off
// the 6x scale, '+' = 1-6x speedup, '-' = slowdown), plus the numeric values in
// CSV for plotting.
#include <cstdio>

#include "bench_json.h"
#include "model/analytic.h"

using namespace compcache;

int main(int argc, char** argv) {
  const double ratios[] = {0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5,
                           0.6,  0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0};
  const double speeds[] = {64, 32, 16, 8, 4, 2, 1, 0.5};

  BenchReport report("fig1a_bandwidth", argc, argv);
  report.Config("model", std::string("analytic"));
  report.Config("decompress_speed_factor", 2.0);

  std::printf("Figure 1(a): bandwidth speedup, compressed transfers to backing store\n");
  std::printf("(rows: compression speed vs I/O, fast at top; cols: compression ratio,\n");
  std::printf(" good compression at left; '#' >6x, '+' 1-6x, '-' <1x)\n\n");

  std::printf("speed\\ratio");
  for (const double r : ratios) {
    std::printf("%5.2f", r);
  }
  std::printf("\n");
  for (const double s : speeds) {
    std::printf("%10.1fx", s);
    for (const double r : ratios) {
      const double speedup = BandwidthSpeedup(r, s);
      std::printf("    %c", speedup > 6.0 ? '#' : speedup >= 1.0 ? '+' : '-');
    }
    std::printf("\n");
  }

  std::printf("\nCSV: speed,ratio,speedup\n");
  for (const double s : speeds) {
    for (const double r : ratios) {
      const double speedup = BandwidthSpeedup(r, s);
      std::printf("%g,%g,%.3f\n", s, r, speedup);
      report.AddRow().Set("speed", s).Set("ratio", r).Set("speedup", speedup);
    }
  }
  return report.WriteIfEnabled() ? 0 : 1;
}
